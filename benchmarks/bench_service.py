"""Experiment P10 — the query service under load and under fire.

Two trajectory datapoints measure the service path (admission ->
supervised worker pool -> framed dispatch -> answer):

* ``service_qps_p50`` — throughput scaling: the same request mix driven
  by 1 client and by 4 concurrent clients; ``speedup`` is the QPS ratio
  (the pool's two workers plus pipelining must make concurrency pay,
  never cost).  The per-level p50 latencies ride along in ``params``.
* ``service_qps_p99`` — tail containment at 4 clients: ``speedup`` is
  ``p50 / p99``, a dimensionless ratio in (0, 1] that *drops* when the
  tail fattens — so the 0.5x trajectory gate catches a tail regression
  the same way it catches a throughput one.

The third test is the availability gate, not a timing: a seeded chaos
schedule SIGKILLs >= 3 workers mid-query-load; every request must
complete with the differentially-verified correct answer or a typed
``WorkerCrashed``, and the pool must return to full readiness.  Zero
wrong answers, smoke mode included.

Results merge into ``BENCH_perf.json`` (or ``BENCH_smoke.json`` under
``--smoke``) alongside the other experiments' entries; the CI perf gate
(``benchmarks/check_trajectory.py``) compares both datapoints against
``benchmarks/BENCH_baseline.json``.
"""

from __future__ import annotations

import json
import os
import platform
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.logic.eval import define_relation
from repro.logic.queries import CANONICAL_QUERIES
from repro.service.server import QueryService, ServiceConfig
from repro.structures import random_alternating_graph, save_snapshot

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS: dict[str, dict] = {}

#: Client levels the load generator drives (the acceptance floor is two).
CLIENT_LEVELS = (1, 4)

#: Mid-load SIGKILL schedule: after these many completed requests, one
#: live worker dies.  Three kills is the acceptance floor.
KILL_AFTER = (5, 13, 21)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """One structure + its oracle answers, shared by every phase."""
    size = 40
    structure = random_alternating_graph(size, seed=7)
    path = tmp_path_factory.mktemp("bench-service") / "g.snap"
    save_snapshot(structure, path)
    oracle = {}
    for name in ("tc", "apath"):
        query = CANONICAL_QUERIES[name]
        rows = define_relation(query.formula(), structure, query.variables,
                               backend="tuple")
        oracle[name] = sorted(list(row) for row in rows)
    return {"path": path, "oracle": oracle, "size": size}


def _start_service(workload, **overrides) -> QueryService:
    config = dict(workers=2, max_concurrency=8, max_queue_depth=64,
                  default_deadline_seconds=60.0)
    config.update(overrides)
    service = QueryService(ServiceConfig(**config))
    service.start()
    reply = service.load("g", str(workload["path"]))
    assert reply.get("ok"), reply
    return service


def _drive(service, workload, requests: int, clients: int,
           on_complete=None) -> dict:
    """The load generator: ``requests`` canonical queries from
    ``clients`` concurrent threads.  Every 200 is differentially
    verified against the tuple oracle; returns latencies + wall time +
    the outcome census."""
    names = ("tc", "apath")
    latencies: list[float] = []
    outcomes = {"ok": 0, "crashed": 0}
    completed = 0
    lock = threading.Lock()

    def one(index: int):
        nonlocal completed
        name = names[index % len(names)]
        started = time.perf_counter()
        status, reply = service.handle_query({"structure": "g",
                                              "query": name})
        elapsed = time.perf_counter() - started
        if status == 200:
            assert reply["rows"] == workload["oracle"][name], \
                f"wrong answer for {name} under load"
            outcome = "ok"
        else:
            assert status == 502, f"unexpected status {status}: {reply}"
            outcome = "crashed"
        with lock:
            latencies.append(elapsed)
            outcomes[outcome] += 1
            completed += 1
            tick = completed
        if on_complete is not None:
            on_complete(tick)
        return status

    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as executor:
        list(executor.map(one, range(requests)))
    wall = time.perf_counter() - wall_start
    return {"latencies": latencies, "wall": wall, "outcomes": outcomes,
            "qps": requests / wall}


# ------------------------------------------------------------ trajectory


def test_service_throughput_and_tail(workload, table, smoke):
    requests = 24 if smoke else 96
    service = _start_service(workload)
    try:
        # Warm every worker's plan cache so the measured phases time the
        # steady state, not compilation.
        for _ in range(4):
            _drive(service, workload, requests=4, clients=2)
        by_level = {clients: _drive(service, workload, requests, clients)
                    for clients in CLIENT_LEVELS}
    finally:
        service.drain()

    low, high = CLIENT_LEVELS
    p50 = {c: _percentile(run["latencies"], 0.50)
           for c, run in by_level.items()}
    p99 = {c: _percentile(run["latencies"], 0.99)
           for c, run in by_level.items()}
    scaling = by_level[high]["qps"] / by_level[low]["qps"]
    containment = p50[high] / p99[high]

    RESULTS["service_qps_p50"] = {
        "seed_seconds": round(1.0 / by_level[low]["qps"], 6),
        "optimized_seconds": round(1.0 / by_level[high]["qps"], 6),
        "speedup": round(scaling, 2),
        "params": {
            "clients": list(CLIENT_LEVELS), "requests": requests,
            "workers": 2, "baseline": f"{low} client",
            "qps": {str(c): round(run["qps"], 1)
                    for c, run in by_level.items()},
            "p50_ms": {str(c): round(p50[c] * 1e3, 3) for c in by_level},
        },
    }
    RESULTS["service_qps_p99"] = {
        "seed_seconds": round(p50[high], 6),
        "optimized_seconds": round(p99[high], 6),
        "speedup": round(containment, 3),
        "params": {
            "clients": high, "requests": requests, "workers": 2,
            "baseline": "p99 vs p50 tail containment",
            "p50_ms": round(p50[high] * 1e3, 3),
            "p99_ms": round(p99[high] * 1e3, 3),
        },
    }
    table("P10: service load (2 workers)",
          ["clients", "qps", "p50 ms", "p99 ms"],
          [[c, f"{run['qps']:.1f}", f"{p50[c] * 1e3:.2f}",
            f"{p99[c] * 1e3:.2f}"] for c, run in by_level.items()])
    assert all(run["outcomes"]["crashed"] == 0
               for run in by_level.values()), "no chaos was armed"
    if not smoke:
        # Concurrency must at least not *cost* throughput; the real bar
        # is the trajectory gate against the committed baseline.
        assert scaling >= 0.6, by_level
        assert containment > 0.0


# -------------------------------------------------------- availability


def test_chaos_schedule_availability_gate(workload, table, smoke):
    """SIGKILL >= 3 workers mid-load: correct-or-typed on every request,
    then full readiness again.  This is the P10 acceptance gate."""
    requests = 32 if smoke else 64
    service = _start_service(workload, max_retries=2)
    pool = service.pool
    kills = []

    def killer(tick: int) -> None:
        if len(kills) >= len(KILL_AFTER) or tick != KILL_AFTER[len(kills)]:
            return
        victims = [handle for handle in pool._workers
                   if handle.proc is not None and handle.proc.poll() is None]
        if not victims:
            return
        victim = victims[len(kills) % len(victims)]
        try:
            os.kill(victim.proc.pid, signal.SIGKILL)
            kills.append(victim.proc.pid)
        except (ProcessLookupError, AttributeError):
            pass

    try:
        _drive(service, workload, requests=4, clients=2)  # warm the pool
        run = _drive(service, workload, requests, clients=4,
                     on_complete=killer)
        assert len(kills) >= 3, f"schedule only killed {len(kills)} workers"
        assert run["outcomes"]["ok"] + run["outcomes"]["crashed"] == requests
        assert run["outcomes"]["ok"] > 0, "chaos starved every request"
        assert pool.stats["worker_deaths"] >= 3

        deadline = time.monotonic() + 30.0
        while not pool.ready() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.ready(), pool.health()
        status, reply = service.handle_query({"structure": "g",
                                              "query": "tc"})
        assert status == 200
        assert reply["rows"] == workload["oracle"]["tc"]
    finally:
        service.drain()
    table("P10: chaos availability (SIGKILL x3 mid-load)",
          ["requests", "ok", "typed 502", "worker deaths", "ready again"],
          [[requests, run["outcomes"]["ok"], run["outcomes"]["crashed"],
            pool.stats["worker_deaths"], True]])


# --------------------------------------------------------------- output


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json(request):
    """Merge the service datapoints into the trajectory file.  Both modes
    *merge* (read-update-write): the smoke file is shared with the other
    benchmark modules inside one CI run, and the vetted ``BENCH_perf``
    entries for other workloads must survive a partial run."""
    yield
    if not RESULTS:
        return
    smoke = bool(request.config.getoption("--smoke"))
    path = REPO_ROOT / ("BENCH_smoke.json" if smoke else "BENCH_perf.json")
    payload = {
        "schema": "repro-perf-trajectory/v1",
        "experiment": "P10 query service"
                      + (" (smoke sizes)" if smoke else ""),
        "python": platform.python_version(),
        "entries": {},
    }
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            payload["entries"] = existing.get("entries", {})
            # Keep the richer header of a combined run.
            for key, value in existing.items():
                if key not in ("entries", "experiment"):
                    payload.setdefault(key, value)
            if existing.get("experiment"):
                payload["experiment"] = (existing["experiment"]
                                         + " + P10 query service")
        except (ValueError, OSError):
            pass
    payload["entries"].update(RESULTS)
    path.write_text(json.dumps(payload, indent=2) + "\n")
