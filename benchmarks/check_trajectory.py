#!/usr/bin/env python3
"""The CI perf-regression gate for the BENCH trajectory.

Compares a measured trajectory file (by default the smoke run's
``BENCH_smoke.json``, falling back to the vetted ``BENCH_perf.json``)
against the committed baseline ``benchmarks/BENCH_baseline.json`` and
**fails** — exit status 1, one line per offender — when

* any entry's measured speedup drops below ``--min-ratio`` (default 0.5)
  times its baseline speedup, or
* an entry present in the baseline is missing from the measured file
  (a silently shrunken benchmark suite must not pass the gate).

Speedups are dimensionless ratios measured within a single process, so
they transfer across machines far better than wall-clock times do; the
0.5x tolerance absorbs the remaining shared-runner wobble while still
catching a real regression (an optimization accidentally disabled shows
up as a ~1.0x speedup, far below half of any committed bar).

Run from anywhere::

    python benchmarks/check_trajectory.py
    python benchmarks/check_trajectory.py --measured BENCH_perf.json --min-ratio 0.8
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "BENCH_baseline.json"


def load_entries(path: Path) -> dict[str, dict]:
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise SystemExit(f"check_trajectory: cannot read {path}: {error}")
    entries = payload.get("entries")
    if not isinstance(entries, dict) or not entries:
        raise SystemExit(f"check_trajectory: {path} has no trajectory entries")
    return entries


def default_measured() -> Path:
    smoke = REPO_ROOT / "BENCH_smoke.json"
    return smoke if smoke.exists() else REPO_ROOT / "BENCH_perf.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--measured", type=Path, default=None,
        help="measured trajectory JSON (default: BENCH_smoke.json if it "
             "exists, else BENCH_perf.json)")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE,
        help=f"committed baseline JSON (default: {DEFAULT_BASELINE})")
    parser.add_argument(
        "--min-ratio", type=float, default=0.5,
        help="fail when measured speedup < min_ratio * baseline speedup "
             "(default: 0.5)")
    args = parser.parse_args(argv)

    measured_path = args.measured if args.measured is not None else default_measured()
    measured = load_entries(measured_path)
    baseline = load_entries(args.baseline)

    failures: list[str] = []
    width = max(len(name) for name in baseline)
    print(f"perf gate: {measured_path.name} vs {args.baseline.name} "
          f"(min ratio {args.min_ratio:g})")
    for name, base_entry in sorted(baseline.items()):
        base_speedup = float(base_entry["speedup"])
        entry = measured.get(name)
        if entry is None:
            failures.append(f"{name}: missing from {measured_path.name}")
            print(f"  {name:<{width}}  baseline {base_speedup:6.2f}x  "
                  f"measured    MISSING")
            continue
        speedup = float(entry["speedup"])
        floor = args.min_ratio * base_speedup
        verdict = "ok" if speedup >= floor else f"REGRESSION (floor {floor:.2f}x)"
        print(f"  {name:<{width}}  baseline {base_speedup:6.2f}x  "
              f"measured {speedup:6.2f}x  {verdict}")
        if speedup < floor:
            failures.append(
                f"{name}: speedup {speedup:.2f}x fell below "
                f"{args.min_ratio:g} x baseline ({base_speedup:.2f}x)")
    for name in sorted(set(measured) - set(baseline)):
        print(f"  {name:<{width}}  (new entry, not yet in baseline — "
              f"{float(measured[name]['speedup']):.2f}x)")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
