"""Experiment E5 — Theorem 5.2: unrestricted SRL + new = PrimRec.

Three pieces of evidence, matching the theorem's two directions and its
"escape from P" message:

* PrimRec → SRL+new: the translated programs compute the same values as the
  combinator terms (composition and primitive recursion survive the trip);
* SRL+new ← PrimRec: the SRL primitives, read through the sets-as-numbers
  Gödel encoding, agree with their primitive recursive counterparts;
* growth: with `new`, value magnitude is no longer bounded by the input
  domain — iterating succ n times on the empty set reaches n, and the
  doubling construction shows the exponential escape.
"""

from __future__ import annotations

import pytest

from repro.core.restrictions import SRL, SRL_NEW
from repro.primrec import (
    ADD,
    CHOOSE_PR,
    INSERT_PR,
    MULT,
    NEW_PR,
    REST_PR,
    choose_number,
    decode_set,
    encode_element,
    insert_number,
    new_number,
    primrec_to_srl,
    rest_number,
    run_translated,
)

CASES = [(ADD, "ADD", [(0, 0), (2, 3), (5, 4)]),
         (MULT, "MULT", [(0, 3), (2, 3), (3, 3)])]


def test_primrec_to_srl_translation_agrees(table):
    rows = []
    for function, name, arguments in CASES:
        translated = primrec_to_srl(function)
        for args in arguments:
            expected = function(*args)
            got = run_translated(translated, *args)
            assert got == expected
            rows.append([name, args, got, expected])
    table("E5: PrimRec terms vs their SRL+new translations",
          ["function", "arguments", "SRL+new", "PrimRec"], rows)


def test_translated_programs_need_new(table):
    rows = []
    for function, name, _ in CASES:
        program = primrec_to_srl(function).program
        outside_srl = bool(SRL.check(program))
        inside_srl_new = SRL_NEW.is_member(program)
        assert outside_srl and inside_srl_new
        rows.append([name, "outside SRL", "inside SRL+new"])
    table("E5: the translations live exactly in SRL+new", ["function", "", ""], rows)


@pytest.mark.slow  # CHOOSE_PR/REST_PR on code 100 expand EXP(2, ~100) unary
def test_godel_encoding_direction(table):
    rows = []
    for code in (1, 5, 12, 44, 100):
        assert CHOOSE_PR(code) == choose_number(code)
        assert REST_PR(code) == rest_number(code)
        assert NEW_PR(code) == new_number(code)
        rows.append([code, sorted(decode_set(code)), CHOOSE_PR(code), REST_PR(code), NEW_PR(code)])
    element = encode_element(3)
    assert INSERT_PR(element, 5) == insert_number(element, 5)
    table("E5: SRL primitives as PrimRec functions on set codes",
          ["code", "set", "choose", "rest", "new"], rows)


def test_unbounded_growth_with_new(table):
    """Iterating succ via new reaches values beyond any fixed input domain —
    the growth plain SRL cannot exhibit (Proposition 3.8)."""
    from repro.primrec.functions import Compose, PrimRec, Proj, Succ, Zero

    # f(n) = n (built by recursion: f(0)=0, f(s+1)=succ(f(s))) — evaluating
    # its translation iterates `new` n times.
    iterate_succ = PrimRec(base=Zero(0), step=Compose(Succ(), (Proj(2, 2),)))
    translated = primrec_to_srl(iterate_succ)
    rows = []
    for n in (4, 8, 16, 32):
        assert run_translated(translated, n) == n
        rows.append([n, n])
    table("E5: value growth with new (input domain no longer bounds values)",
          ["iterations of succ", "value reached"], rows)


@pytest.mark.parametrize("x, y", [(3, 4), (5, 5)])
def test_benchmark_translated_add(benchmark, x, y):
    translated = primrec_to_srl(ADD)
    result = benchmark.pedantic(lambda: run_translated(translated, x, y),
                                rounds=1, iterations=1)
    assert result == x + y


def test_benchmark_primrec_mult(benchmark):
    result = benchmark(MULT, 6, 7)
    assert result == 42
