"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one experiment of DESIGN.md's
per-experiment index (one per theorem / figure of the paper).  Besides the
pytest-benchmark timings, every experiment prints a small table of the
rows/series whose *shape* reproduces the paper's claim; the same rows are
attached to ``benchmark.extra_info`` so they survive in the benchmark JSON.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="benchmark smoke mode: smaller sizes, no speedup-ratio "
             "assertions (for shared CI runners where wall-clock ratios "
             "wobble); BENCH_perf.json keeps its vetted full-size entries",
    )


@pytest.fixture
def smoke(request) -> bool:
    """True when the run is a CI smoke pass (see --smoke)."""
    return bool(request.config.getoption("--smoke"))


def emit_table(title: str, header: list[str], rows: list[list[object]]) -> None:
    """Print a results table (visible with ``pytest -s`` and in captured
    output on failure)."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), *(len(str(row[i])) for row in rows)) if rows else len(str(h))
              for i, h in enumerate(header)]
    print("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    for row in rows:
        print("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))


@pytest.fixture
def table():
    """A fixture handing benchmarks the table emitter."""
    return emit_table
