"""Experiment E4 — Theorem 4.13: BASRL = L.

Two BASRL workloads are swept: the Proposition 4.5 / Lemma 4.6 arithmetic
and the Lemma 4.10 iterated permutation product IM_Sn (complete for L).
Shape to reproduce: (a) the programs agree with the baselines, and (b) the
peak *accumulator* footprint stays constant as the input grows — the
logspace signature — whereas the SRL copy-the-set program's accumulator
grows linearly with the input.
"""

from __future__ import annotations

import pytest

from repro.core import Atom, Program, Session, parse_expression
from repro.core import builders as b
from repro.core.restrictions import BASRL
from repro.core.typecheck import database_types
from repro.queries import (
    arithmetic_database,
    arithmetic_program,
    compose_permutations_baseline,
    evaluate_arithmetic,
    im_database,
    ip_program,
)
from repro.queries.arithmetic_basrl import rank_of
from repro.structures import random_permutations

DOMAIN_SIZES = (8, 16, 24, 32)


def test_arithmetic_agrees_with_python(table):
    rows = []
    for a, bb in ((3, 4), (7, 2), (5, 5)):
        rows.append(["add", a, bb, evaluate_arithmetic("add", a, bb, size=32), a + bb])
        rows.append(["mult", a, bb, evaluate_arithmetic("mult", a, bb, size=32), a * bb])
    for value in (9, 10):
        rows.append(["shift", value, "", evaluate_arithmetic("shift", value, size=32), value // 2])
        rows.append(["parity", value, "", evaluate_arithmetic("parity", value, size=32),
                     value % 2 == 1])
    for row in rows:
        assert row[3] == row[4]
    table("E4: BASRL arithmetic vs Python", ["op", "a", "b", "BASRL", "expected"], rows)


def test_basrl_accumulators_stay_flat_as_the_domain_grows(table):
    """The logspace signature: peak accumulator size is O(1) (a bounded
    tuple), independent of |D|, while the SRL set-copy accumulator grows
    linearly."""
    rows = []
    copy_text = "(set-reduce D (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
    for size in DOMAIN_SIZES:
        database = arithmetic_database(size)
        basrl_session = Session(arithmetic_program())
        basrl_session.call("add", Atom(size // 2), Atom(size // 3), database=database)
        basrl_peak = basrl_session.stats.max_accumulator_size
        srl_session = Session(Program(main=parse_expression(copy_text)))
        srl_session.run(database)
        rows.append([size, basrl_peak, srl_session.stats.max_accumulator_size])
    table("E4: peak accumulator footprint vs |D| (BASRL flat, SRL grows)",
          ["|D|", "BASRL add accumulator", "SRL set-copy accumulator"], rows)
    basrl_footprints = [row[1] for row in rows]
    srl_footprints = [row[2] for row in rows]
    assert max(basrl_footprints) <= 4           # a bounded-width tuple
    assert srl_footprints[-1] >= DOMAIN_SIZES[-1]   # grows with the input


def test_iterated_permutation_product_matches_baseline(table):
    rows = []
    for count, degree in ((3, 4), (4, 5), (5, 6)):
        perms = random_permutations(count, degree, seed=count)
        product = compose_permutations_baseline(perms)
        session = Session(ip_program())
        peak = 0
        for start in range(degree):
            result = session.call("ip", Atom(start), database=im_database(perms, start))
            assert rank_of(result[1]) == product[start]
            peak = max(peak, session.stats.max_accumulator_size)
        rows.append([count, degree, "agrees on all start points", peak])
    table("E4: IM_Sn (Lemma 4.10) vs baseline", ["#perms", "degree", "verdict",
                                                 "peak accumulator"], rows)
    # The accumulator is the bounded-width tuple [m, [i, pi(i)]] — three
    # atoms regardless of the input size (the O(log n)-bit signature).
    assert all(row[3] <= 3 for row in rows)


def test_programs_are_in_basrl():
    # Membership (and the typecheck it relies on) is checked on a whole
    # program, so give the definition library a main that exercises `ip`.
    perms = random_permutations(3, 4, seed=0)
    program = ip_program()
    program.main = b.call("ip", b.var("START"))
    assert BASRL.is_member(program, database_types(im_database(perms, 0)))


@pytest.mark.parametrize("size", (16, 32))
def test_benchmark_basrl_add(benchmark, size):
    database = arithmetic_database(size)
    program = arithmetic_program()

    session = Session(program)

    def run():
        return session.call("add", Atom(size // 2), Atom(size // 3),
                            database=database)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rank_of(result) == size // 2 + size // 3


def test_benchmark_im_product(benchmark):
    perms = random_permutations(5, 6, seed=1)
    database = im_database(perms, 0)
    program = ip_program()
    product = compose_permutations_baseline(perms)

    session = Session(program)

    def run():
        return session.call("ip", Atom(0), database=database)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rank_of(result[1]) == product[0]
