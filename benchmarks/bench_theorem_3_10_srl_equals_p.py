"""Experiment E1 — Theorem 3.10: ℒ(SRL) = P.

The SRL program for the P-complete problem AGAP (Lemma 3.6) is run against
the direct fixed-point baseline over a sweep of alternating graphs.  The
shape to reproduce: (a) the SRL program agrees with the baseline everywhere,
and (b) its evaluator cost grows polynomially in the universe size (the
Lemma 3.9 argument), with the measured growth exponent well below the crude
Proposition 6.1 bound.
"""

from __future__ import annotations

import math

import pytest

from repro.core import Session, run_program
from repro.core.restrictions import SRL
from repro.core.typecheck import database_types
from repro.queries import agap_baseline, agap_database, agap_program
from repro.structures import random_alternating_graph

SIZES = (4, 6, 8, 10)


def _run_agap(size: int, seed: int = 0):
    # The interpreter backend keeps the Lemma 3.9 cost experiment in its
    # original units (steps = AST-node visits).
    graph = random_alternating_graph(size, seed=seed)
    session = Session(agap_program(), backend="interp")
    answer = session.run(agap_database(graph))
    return answer, session.stats, graph


def test_srl_agap_agrees_with_baseline_everywhere(table):
    rows = []
    for size in SIZES:
        for seed in (0, 1):
            graph = random_alternating_graph(size, seed=seed)
            srl = run_program(agap_program(), agap_database(graph))
            base = agap_baseline(graph)
            assert srl == base
            rows.append([size, seed, srl, base])
    table("E1: AGAP — SRL program vs direct baseline", ["n", "seed", "SRL", "baseline"], rows)


def test_agap_program_is_inside_the_srl_restriction():
    graph = random_alternating_graph(6, seed=0)
    assert SRL.is_member(agap_program(), database_types(agap_database(graph)))


def test_evaluator_cost_grows_polynomially(table):
    rows = []
    steps = {}
    for size in SIZES:
        _, stats, _ = _run_agap(size)
        steps[size] = stats.steps
        rows.append([size, stats.steps, stats.inserts, stats.max_set_size])
    # Empirical growth exponent between consecutive sizes.
    exponents = [
        math.log(steps[b] / steps[a]) / math.log(b / a)
        for a, b in zip(SIZES, SIZES[1:])
    ]
    rows.append(["growth exponent", f"{max(exponents):.2f}", "", ""])
    table("E1: AGAP evaluator cost vs n (polynomial, Lemma 3.9)",
          ["n", "steps", "inserts", "max set size"], rows)
    # Polynomial (the program is roughly cubic/quartic here), certainly not
    # exponential: the exponent stays bounded.
    assert max(exponents) < 8


@pytest.mark.parametrize("size", SIZES)
def test_benchmark_agap_srl(benchmark, size):
    answer, stats, graph = _run_agap(size)
    session = Session(agap_program())  # compiled engine
    session.run(agap_database(graph))  # warm: compile outside the timed round
    result = benchmark.pedantic(
        lambda: session.run(agap_database(graph)),
        rounds=1, iterations=1,
    )
    assert result == agap_baseline(graph)
    benchmark.extra_info["universe"] = size
    benchmark.extra_info["evaluator_steps"] = stats.steps


def test_benchmark_agap_baseline(benchmark):
    graph = random_alternating_graph(max(SIZES), seed=0)
    benchmark(agap_baseline, graph)
