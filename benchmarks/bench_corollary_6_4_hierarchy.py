"""Experiment E8 — Corollary 6.4: SRL_h = DTIME(2_h # n).

The hierarchy is exercised through iterated powersets: a set-height-(h+1)
program applying ``powerset`` h times produces output of size 2_h # n.
Shape to reproduce: output sizes follow the tower function exactly, and the
syntactic classifier places each program on the corresponding hierarchy
level.
"""

from __future__ import annotations

import pytest

from repro.complexity import hierarchy_level, iterated_powerset_size, tower
from repro.core import run_program
from repro.core import builders as b
from repro.core.typecheck import database_types
from repro.complexity import classify_program
from repro.queries import powerset_database, powerset_program


def _iterated_powerset_program(iterations: int):
    """powerset applied ``iterations`` times to the input set S."""
    program = powerset_program()
    expr = b.var("S")
    for _ in range(iterations):
        expr = b.call("powerset", expr)
    program.main = expr
    return program


def test_output_sizes_follow_the_tower_function(table):
    rows = []
    cases = [(1, 2), (1, 3), (1, 4), (2, 2), (2, 3)]
    for iterations, base in cases:
        result = run_program(_iterated_powerset_program(iterations), powerset_database(base))
        expected = iterated_powerset_size(iterations, base)
        assert len(result) == expected == tower(iterations, base)
        rows.append([iterations, base, len(result), expected])
    table("E8: iterated powerset sizes vs 2_h#n",
          ["powerset iterations h", "|S| = n", "measured size", "2_h#n"], rows)


def test_classifier_places_programs_on_the_hierarchy(table):
    rows = []
    for iterations in (1, 2):
        program = _iterated_powerset_program(iterations)
        verdict = classify_program(program, database_types(powerset_database(2)))
        assert verdict.hierarchy is not None
        assert verdict.hierarchy.set_height == iterations + 1
        rows.append([iterations, verdict.hierarchy.set_height, verdict.hierarchy.time_class])
    table("E8: syntactic classification of the hierarchy programs",
          ["powerset iterations", "set-height", "class"], rows)


def test_hierarchy_levels_are_strictly_ordered():
    assert tower(1, 4) < tower(2, 4) < tower(3, 4)
    assert "P" in hierarchy_level(1).time_class
    assert "EXPTIME" in hierarchy_level(2).time_class


@pytest.mark.parametrize("base", (6, 10))
def test_benchmark_single_powerset(benchmark, base):
    program = _iterated_powerset_program(1)
    database = powerset_database(base)
    result = benchmark.pedantic(lambda: run_program(program, database), rounds=1, iterations=1)
    assert len(result) == 2 ** base


def test_benchmark_double_powerset(benchmark):
    program = _iterated_powerset_program(2)
    database = powerset_database(3)
    result = benchmark.pedantic(lambda: run_program(program, database), rounds=1, iterations=1)
    assert len(result) == 2 ** 8
