"""Experiment E9 — Figure 1: the polynomial-time query classes.

Figure 1 is a containment diagram:

    (FO(wo<=)+LFP)  ⊂  (FO(wo<=)+LFP+count)  ⊂  order-independent P  ⊂  (FO+LFP) = P

The harness regenerates one row per containment edge, each with a concrete
witness computed by this library:

* EVEN — inexpressible without counting (the EF-game evidence of Fact 7.5:
  pure sets of sizes 2k and 2k+1 agree on all order-free FO sentences of
  rank k), expressible with a counting quantifier, with the proper hom of
  Proposition 7.6 and with an ordered BASRL toggle;
* a 1-WL-indistinguishable pair separated by an order-independent
  polynomial-time SRL query (connectivity) — the Theorem 7.7 shape;
* the order-dependent Purple(First(S)) query, inside P but outside
  order-independent P.
"""

from __future__ import annotations


from repro.complexity import figure1_lattice
from repro.core import run_program
from repro.core.order import probe_order_independence
from repro.logic.eval import evaluate
from repro.logic.formula import count_at_least, rel
from repro.logic.games import ef_equivalent
from repro.queries import even_database, even_program, even_via_counting
from repro.queries.relational import (
    build_company_data,
    company_database,
    first_employee_is_senior_program,
)
from repro.queries.transitive_closure import graph_database, reachability_program
from repro.structures import (
    Structure,
    Vocabulary,
    colored_graph_to_structure,
    cycle_pair,
    wl1_indistinguishable,
)


def _pure_set(size: int) -> Structure:
    return Structure(Vocabulary.of(), size, {})


def test_edge_1_counting_is_needed_for_even(table):
    """(FO(wo<=)+LFP) ⊂ (FO(wo<=)+LFP+count), witness EVEN (Fact 7.5)."""
    rows = []
    # Order-free FO of rank k cannot tell 2k from 2k+1 elements apart ...
    for rank in (2, 3):
        equal = ef_equivalent(_pure_set(2 * rank), _pure_set(2 * rank + 1), rounds=rank)
        assert equal
        rows.append([f"EF rank {rank}", f"|{2*rank}| vs |{2*rank+1}|", "indistinguishable"])
    # ... while counting (and the ordered SRL toggle, and the proper hom) computes EVEN.
    for size in (6, 7):
        with_count = evaluate(
            count_at_least("half", "x", rel("U", "x")),
            Structure(Vocabulary.of(U=1), size, {"U": frozenset((i,) for i in range(0, size, 2))}),
        )
        srl = run_program(even_program(), even_database(size))
        hom = even_via_counting(range(size))
        assert srl == hom == (size % 2 == 0)
        rows.append([f"n = {size}", f"SRL toggle={srl}, proper hom={hom}",
                     f"count-quantifier example={with_count}"])
    table("E9 edge 1: EVEN needs counting", ["evidence", "instance", "verdict"], rows)


def test_edge_2_counting_logic_misses_an_order_independent_p_property(table):
    """(FO(wo<=)+LFP+count) ⊂ order-independent P — the Theorem 7.7 shape."""
    rows = []
    for half in (4, 5):
        pair = cycle_pair(half)
        fooled = wl1_indistinguishable(pair.untwisted, pair.twisted)
        single = colored_graph_to_structure(pair.untwisted)
        double = colored_graph_to_structure(pair.twisted)
        reach_single = run_program(reachability_program(), graph_database(single))
        reach_double = run_program(reachability_program(), graph_database(double))
        separated = reach_single != reach_double
        assert fooled and separated
        independent = probe_order_independence(
            reachability_program(), graph_database(single), trials=5
        ).independent
        assert independent
        rows.append([pair.description, "1-WL indistinguishable", "separated by SRL reachability",
                     "order-independent"])
    table("E9 edge 2: an order-independent P query beyond bounded-variable counting",
          ["pair", "counting logic", "SRL", "order"], rows)


def test_edge_3_p_contains_order_dependent_queries(table):
    """order-independent P ⊂ (FO+LFP) = P, witness Purple(First(S))."""
    data = build_company_data(num_employees=10, seed=3)
    database = company_database(data)
    program = first_employee_is_senior_program()
    report = probe_order_independence(program, database, trials=40)
    assert not report.independent
    table("E9 edge 3: a P query that is not order-independent",
          ["query", "baseline answer", "answer under a permuted order"],
          [["Purple(First(S))", report.baseline, report.witness_value]])


def test_lattice_matches_the_figure(table):
    lattice = figure1_lattice()
    rows = [[edge.lower, "⊂", edge.upper, edge.witness] for edge in lattice.edges()]
    assert len(rows) == 3
    assert lattice.is_contained("fo_lfp_unordered", "p")
    table("E9: Figure 1 containment chain", ["lower", "", "upper", "witness"], rows)


def test_benchmark_even_srl(benchmark):
    database = even_database(24)
    result = benchmark(lambda: run_program(even_program(), database))
    assert result is True


def test_benchmark_wl_refinement(benchmark):
    pair = cycle_pair(8)
    result = benchmark(wl1_indistinguishable, pair.untwisted, pair.twisted)
    assert result is True
