"""Experiment E3 — Corollaries 4.2 / 4.4: SRFO+TC = NL and SRFO+DTC = L.

Reachability (the NL-complete problem behind TC) and deterministic
reachability (the L workload behind DTC) are computed three ways — the SRL
closure programs of Section 4, the logic evaluator's TC/DTC operators, and
graph-search baselines — over random digraphs and functional graphs.  Shape
to reproduce: all three agree, DTC answers are always a subset of TC
answers, and the DTC computation touches no more state than the TC one.
"""

from __future__ import annotations

import pytest

from repro.core import Session, run_program
from repro.logic import evaluate
from repro.logic.queries import reachability_dtc, reachability_tc
from repro.queries import (
    deterministic_reachability_program,
    deterministic_reachable_baseline,
    graph_database,
    reachability_program,
    reachable_baseline,
)
from repro.structures import functional_graph, random_graph

SIZES = (6, 8, 10, 12)


def test_tc_three_way_agreement(table):
    rows = []
    for size in SIZES:
        graph = random_graph(size, seed=size)
        srl = run_program(reachability_program(), graph_database(graph))
        logic = evaluate(reachability_tc(), graph)
        base = reachable_baseline(graph)
        assert srl == logic == base
        rows.append([size, srl, logic, base])
    table("E3: reachability (TC / NL side)", ["n", "SRL", "FO+TC", "baseline"], rows)


def test_dtc_three_way_agreement(table):
    rows = []
    for size in SIZES:
        graph = functional_graph(size, seed=size)
        srl = run_program(deterministic_reachability_program(), graph_database(graph))
        logic = evaluate(reachability_dtc(), graph)
        base = deterministic_reachable_baseline(graph)
        assert srl == logic == base
        rows.append([size, srl, logic, base])
    table("E3: deterministic reachability (DTC / L side)",
          ["n", "SRL", "FO+DTC", "baseline"], rows)


def test_dtc_is_contained_in_tc(table):
    rows = []
    for seed in range(6):
        graph = random_graph(8, seed=seed, edge_probability=0.25)
        database = graph_database(graph)
        tc_answer = run_program(reachability_program(), database)
        dtc_answer = run_program(deterministic_reachability_program(), database)
        if dtc_answer:
            assert tc_answer
        rows.append([seed, dtc_answer, tc_answer])
    table("E3: DTC implies TC (L ⊆ NL shape)", ["seed", "DTC", "TC"], rows)


@pytest.mark.parametrize("size", (8, 12))
def test_benchmark_srl_tc(benchmark, size):
    graph = random_graph(size, seed=1)
    database = graph_database(graph)
    session = Session(reachability_program())  # compiled engine
    session.run(database)  # warm: compile outside the timed round
    result = benchmark.pedantic(
        lambda: session.run(database), rounds=1, iterations=1
    )
    assert result == reachable_baseline(graph)


@pytest.mark.parametrize("size", (8, 12))
def test_benchmark_srl_dtc(benchmark, size):
    graph = functional_graph(size, seed=1)
    database = graph_database(graph)
    session = Session(deterministic_reachability_program())  # compiled engine
    session.run(database)  # warm: compile outside the timed round
    result = benchmark.pedantic(
        lambda: session.run(database),
        rounds=1, iterations=1,
    )
    assert result == deterministic_reachable_baseline(graph)
