"""Experiment E7 — Proposition 6.2 / Corollary 6.3: DTIME(n) ⊆ SRL.

Linear-time Turing machines are compiled into SRL programs (width-2 tape
pairs, constant depth) and swept over growing inputs.  Shape to reproduce:
(a) the compiled program agrees with the direct machine run on every input,
(b) its syntactic audit stays inside SRL (hence P) with constant depth, and
(c) the evaluator cost grows roughly quadratically — the O(n² · T_ins) cost
the paper derives for the simulation.
"""

from __future__ import annotations

import math

import pytest

from repro.core.restrictions import SRL
from repro.core.typecheck import database_types
from repro.machines import compile_machine, contains_ab_machine, parity_machine

SIZES = (6, 12, 24)


def test_compiled_machines_agree_with_direct_runs(table):
    rows = []
    for factory, samples in (
        (parity_machine, ["", "1", "0110", "10101", "111000111"]),
        (contains_ab_machine, ["", "a", "ba", "bbab", "aaaa", "bbbba"]),
    ):
        machine = factory()
        compiled = compile_machine(machine)
        for text in samples:
            direct = machine.run(text, tape_length=compiled.tape_length_for(text)).accepted
            srl = compiled.run(text)
            assert direct == srl
            rows.append([machine.name, repr(text), srl, direct])
    table("E7: compiled SRL simulation vs direct TM run",
          ["machine", "input", "SRL", "TM"], rows)


def test_compiled_program_stays_in_srl_with_constant_depth(table):
    compiled = compile_machine(parity_machine())
    rows = []
    for text in ("01", "0101", "01010101"):
        analysis = compiled.analysis(text)
        assert "P = SRL" in analysis.classification
        assert analysis.depth <= 3
        rows.append([len(text), analysis.depth, analysis.width, analysis.classification])
    assert SRL.is_member(compiled.program, database_types(compiled.database_for("0101")))
    table("E7: syntactic audit of the compiled program (constant in n)",
          ["input length", "depth", "width", "class"], rows)


def test_quadratic_cost_of_the_simulation(table):
    compiled = compile_machine(parity_machine())
    rows = []
    steps = {}
    for size in SIZES:
        _, stats = compiled.run_with_stats("1" * size)
        steps[size] = stats.steps
        rows.append([size, stats.steps])
    exponents = [
        math.log(steps[b] / steps[a]) / math.log(b / a) for a, b in zip(SIZES, SIZES[1:])
    ]
    rows.append(["growth exponent", f"{max(exponents):.2f}"])
    table("E7: evaluator cost of the simulation (≈ n², the paper's O(n²·T_ins))",
          ["input length n", "evaluator steps"], rows)
    assert 1.3 < max(exponents) < 3.0


@pytest.mark.parametrize("size", SIZES)
def test_benchmark_compiled_parity(benchmark, size):
    compiled = compile_machine(parity_machine())
    text = "10" * (size // 2)
    result = benchmark.pedantic(lambda: compiled.run(text), rounds=1, iterations=1)
    assert result == (text.count("1") % 2 == 0)
    benchmark.extra_info["input_length"] = size


def test_benchmark_direct_machine(benchmark):
    machine = parity_machine()
    text = "10" * 12
    benchmark(machine.accepts, text)
