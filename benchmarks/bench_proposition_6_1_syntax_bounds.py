"""Experiment E6 — Proposition 6.1: the DTIME(n^{ad} · T_ins) syntactic bound.

A family of programs sweeping width a ∈ {1, 2} × depth d ∈ {1, 2} is run
over growing domains; for each program the measured evaluator cost is
compared against its syntactic bound n^{ad}.  Shape to reproduce: measured
cost stays below the bound (the bound is sound) and deeper/wider programs
really do cost more (the bound tracks the right syntactic quantities), while
the bound itself is loose — exactly the paper's remark that "the bound
leaves much room for improvement".
"""

from __future__ import annotations

import pytest

from repro.core import Atom, Database, Program, Session, make_set, parse_expression
from repro.core.analysis import analyze
from repro.core.typecheck import database_types

# width 1, depth 1: copy the domain.
COPY = "(set-reduce D (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"

# width 2, depth 1: the set of [x, x] pairs.
PAIRS = "(set-reduce D (lambda (x e) (tuple x x)) (lambda (a r) (insert a r)) emptyset emptyset)"

# width 1, depth 2: for each element, rebuild the whole domain copy.
NESTED = """(set-reduce D (lambda (x e) x)
              (lambda (a r)
                (set-reduce D (lambda (y e) y) (lambda (c s) (insert c s)) emptyset emptyset))
              emptyset emptyset)"""

# width 2, depth 2: for each element, rebuild the pair set.
NESTED_PAIRS = """(set-reduce D (lambda (x e) x)
                    (lambda (a r)
                      (set-reduce D (lambda (y e) (tuple y y))
                                    (lambda (c s) (insert c s)) emptyset emptyset))
                    emptyset emptyset)"""

PROGRAMS = {
    "copy (a=1, d=1)": COPY,
    "pairs (a=2, d=1)": PAIRS,
    "nested copy (a=1, d=2)": NESTED,
    "nested pairs (a=2, d=2)": NESTED_PAIRS,
}

SIZES = (8, 16, 32)


def _database(size: int) -> Database:
    return Database({"D": make_set(*(Atom(i) for i in range(size)))})


def test_measured_cost_respects_the_syntactic_bound(table):
    rows = []
    for name, text in PROGRAMS.items():
        program = Program(main=parse_expression(text))
        analysis = analyze(program, input_types=database_types(_database(4)))
        exponent = analysis.time_exponent
        # The n^{ad} bound of Proposition 6.1 is stated in AST-node
        # visits, so this experiment pins the interpreter backend.
        session = Session(program, backend="interp")
        for size in SIZES:
            session.run(_database(size))
            bound = size ** exponent
            # T_ins is at least 1, so steps <= c * n^{ad} for a modest c.
            assert session.stats.steps <= 40 * bound
            rows.append([name, analysis.width, analysis.depth, size,
                         session.stats.steps, bound])
    table("E6: measured evaluator steps vs the n^{a*d} bound",
          ["program", "a", "d", "n", "steps", "n^(a*d)"], rows)


def test_deeper_programs_cost_more(table):
    size = 24
    costs = {}
    for name, text in PROGRAMS.items():
        session = Session(Program(main=parse_expression(text)), backend="interp")
        session.run(_database(size))
        costs[name] = session.stats.steps
    table("E6: cost ordering at n=24", ["program", "steps"],
          [[name, steps] for name, steps in costs.items()])
    assert costs["nested copy (a=1, d=2)"] > costs["copy (a=1, d=1)"]
    assert costs["nested pairs (a=2, d=2)"] > costs["pairs (a=2, d=1)"]


def test_analysis_reports_the_right_measures():
    program = Program(main=parse_expression(NESTED_PAIRS))
    analysis = analyze(program, input_types=database_types(_database(4)))
    assert analysis.depth == 2
    assert analysis.width == 2
    assert analysis.time_exponent == 4


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_benchmark_programs(benchmark, name):
    program = Program(main=parse_expression(PROGRAMS[name]))
    database = _database(24)
    session = Session(program)
    benchmark.pedantic(lambda: session.run(database), rounds=1, iterations=1)
    benchmark.extra_info["program"] = name
