"""Experiment P0 — the cross-layer performance overhaul (perf trajectory).

Unlike the theorem experiments (E1–E10), this module benchmarks the
*interpreter itself*: each test times an identical workload on the seed
implementation (via :func:`repro.core.reference.legacy_mode` /
``memoize=False``, which re-enable the seed's uncached code paths) and on
the optimized one, asserts the optimized run is at least ``TARGET_SPEEDUP``
times faster, and cross-checks that both produce *exactly* the same value.

The measured paths are the three hot-path pathologies the overhaul
eliminated (see DESIGN.md, "Caching architecture"):

* the powerset program of Example 3.12 — set-of-sets construction, where
  the seed recomputed recursive canonical keys on every insert/sort;
* ``define_relation`` over a TC formula — where the seed recomputed the
  whole closure once per row of the defined relation;
* ``define_relation`` over an LFP formula — same, for fixed points;
* the canonical-sort kernel on nested sets — the values-layer micro.

PR 2 extends the trajectory with the *compiled engine* datapoints: the E1
(AGAP, SRL = P) and E3 (TC / DTC) workloads run on the compiled backend
against the PR 1 interpreter, with a >= 2x acceptance bar.

Results are merged into ``BENCH_perf.json`` at the repo root — the perf
trajectory, one entry per measured workload, for later PRs to extend.
Run with ``--smoke`` (CI) for smaller sizes and no speedup-ratio
assertions.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.core import Session, run_program
from repro.core.reference import legacy_mode, value_sort_reference
from repro.core.values import make_set, make_tuple, Atom, value_sort
from repro.logic.eval import define_relation
from repro.logic.formula import LFPAtom, TCAtom, and_, aux, eq, exists, or_, rel, var
from repro.queries import (
    agap_baseline,
    agap_database,
    agap_program,
    deterministic_reachability_program,
    graph_database,
    powerset_database,
    powerset_program,
    reachability_program,
)
from repro.structures import functional_graph, random_alternating_graph, random_graph

#: The acceptance bar of the PR 1 perf-overhaul issue (seed vs optimized).
TARGET_SPEEDUP = 10.0

#: The acceptance bar of the PR 2 engine issue (compiled vs interpreter).
COMPILED_TARGET_SPEEDUP = 2.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS: dict[str, dict] = {}


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _record(name: str, seed_seconds: float, optimized_seconds: float,
            params: dict, table) -> float:
    speedup = seed_seconds / optimized_seconds
    RESULTS[name] = {
        "seed_seconds": round(seed_seconds, 6),
        "optimized_seconds": round(optimized_seconds, 6),
        "speedup": round(speedup, 2),
        "params": params,
    }
    table(f"P0: {name} (seed vs optimized)",
          ["seed s", "optimized s", "speedup", "target"],
          [[f"{seed_seconds:.4f}", f"{optimized_seconds:.4f}",
            f"{speedup:.1f}x", f">= {TARGET_SPEEDUP:.0f}x"]])
    return speedup


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json(request):
    """After the module's tests, merge the new trajectory points into
    ``BENCH_perf.json`` (existing entries for other workloads survive a
    partial run).  Smoke runs measure shrunken sizes with no assertions,
    so they never overwrite the vetted full-size points."""
    yield
    if not RESULTS or request.config.getoption("--smoke"):
        return
    path = REPO_ROOT / "BENCH_perf.json"
    payload = {
        "schema": "repro-perf-trajectory/v1",
        "experiment": "P0 perf overhaul + P1 compiled engine",
        "python": platform.python_version(),
        "target_speedup": TARGET_SPEEDUP,
        "compiled_target_speedup": COMPILED_TARGET_SPEEDUP,
        "entries": {},
    }
    if path.exists():
        try:
            payload["entries"] = json.loads(path.read_text()).get("entries", {})
        except (ValueError, OSError):
            pass
    payload["entries"].update(RESULTS)
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------- workloads


def test_powerset_example_3_12_speedup(table, smoke):
    """Example 3.12 at |S| = 10: 1024 subsets, all living inside one
    set-of-sets accumulator — the seed's worst case for key recomputation."""
    size = 8 if smoke else 10
    program = powerset_program()
    database = powerset_database(size)

    def optimized():
        return run_program(program, database)

    def seed():
        with legacy_mode():
            return run_program(program, database)

    fast_result = optimized()
    with legacy_mode():
        slow_result = run_program(program, database)
    assert len(fast_result) == 2 ** size
    assert fast_result == slow_result

    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("powerset_example_3_12", seed_seconds, optimized_seconds,
                      {"set_size": size}, table)
    if not smoke:
        assert speedup >= TARGET_SPEEDUP


def _tc_closure_formula() -> TCAtom:
    return TCAtom(("x",), ("y",), rel("E", "x", "y"), (var("u"),), (var("v"),))


def test_tc_define_relation_speedup(table, smoke):
    """``define_relation`` over TC: the seed recomputed the closure for every
    one of the n^2 rows; the memoized checker computes it once."""
    size = 8 if smoke else 12
    graph = random_graph(size, edge_probability=0.2, seed=3)
    formula = _tc_closure_formula()

    def optimized():
        return define_relation(formula, graph, ("u", "v"), memoize=True)

    def seed():
        return define_relation(formula, graph, ("u", "v"), memoize=False)

    assert optimized() == seed()
    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("tc_define_relation", seed_seconds, optimized_seconds,
                      {"graph_size": size, "rows": size * size}, table)
    if not smoke:
        assert speedup >= TARGET_SPEEDUP


def _lfp_reachability_formula() -> LFPAtom:
    body = or_(
        eq("x", "y"),
        exists("z", and_(rel("E", "x", "z"), aux("R", "z", "y"))),
    )
    return LFPAtom("R", ("x", "y"), body, (var("u"), var("v")))


def test_lfp_define_relation_speedup(table, smoke):
    """``define_relation`` over LFP (the GAP fixed point with free
    endpoints): one fixed-point iteration instead of n^2."""
    size = 7 if smoke else 9
    graph = random_graph(size, edge_probability=0.25, seed=5)
    formula = _lfp_reachability_formula()

    def optimized():
        return define_relation(formula, graph, ("u", "v"), memoize=True)

    def seed():
        return define_relation(formula, graph, ("u", "v"), memoize=False)

    assert optimized() == seed()
    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("lfp_define_relation", seed_seconds, optimized_seconds,
                      {"graph_size": size, "rows": size * size}, table)
    if not smoke:
        assert speedup >= TARGET_SPEEDUP


def test_value_sort_kernel(table, smoke):
    """The values-layer micro: canonically sorting nested sets-of-tuples.
    No >= 10x assertion here (the kernel is measured inside fresh values each
    round for the cached side too); recorded for the trajectory."""
    count = 60 if smoke else 250

    def build():
        return [
            make_set(*(make_tuple(Atom(i % 7), make_set(Atom(i % 5), Atom(j % 11)))
                       for j in range(12)))
            for i in range(count)
        ]

    values = build()
    reference_seconds = _best_of(lambda: value_sort_reference(values * 4), repeats=3)
    cached_seconds = _best_of(lambda: value_sort(values * 4), repeats=3)
    speedup = _record("value_sort_kernel", reference_seconds, cached_seconds,
                      {"values": len(values) * 4}, table)
    if not smoke:
        assert speedup >= 1.0


# ------------------------------------------- P1: the compiled engine (PR 2)


def _compiled_vs_interp(name: str, program, database, params: dict,
                        table, smoke: bool, check=None) -> None:
    """Time one workload on the compiled backend against the PR 1
    interpreter, cross-check the values, and record the trajectory point."""
    compiled = Session(program)               # backend="compiled"
    interp = Session(program, backend="interp")
    fast, slow = compiled.run(database), interp.run(database)
    assert fast == slow
    if check is not None:
        assert fast == check
    interp_seconds = _best_of(lambda: interp.run(database), repeats=2)
    compiled_seconds = _best_of(lambda: compiled.run(database), repeats=3)
    params = dict(params, baseline="interp", target=COMPILED_TARGET_SPEEDUP)
    speedup = _record(name, interp_seconds, compiled_seconds, params, table)
    if not smoke:
        assert speedup >= COMPILED_TARGET_SPEEDUP


def test_compiled_engine_agap_e1(table, smoke):
    """E1 (Theorem 3.10, SRL = P): the AGAP program on the compiled engine
    vs the tree-walking interpreter."""
    size = 8 if smoke else 10
    graph = random_alternating_graph(size, seed=0)
    _compiled_vs_interp("compiled_vs_interp_agap_e1", agap_program(),
                        agap_database(graph), {"universe": size}, table, smoke,
                        check=agap_baseline(graph))


def test_compiled_engine_tc_e3(table, smoke):
    """E3 (Corollary 4.2, TC side): SRL reachability on the compiled engine
    vs the interpreter."""
    size = 9 if smoke else 12
    graph = random_graph(size, seed=1)
    _compiled_vs_interp("compiled_vs_interp_tc_e3", reachability_program(),
                        graph_database(graph), {"universe": size}, table, smoke)


def test_compiled_engine_dtc_e3(table, smoke):
    """E3 (Corollary 4.4, DTC side): deterministic reachability on the
    compiled engine vs the interpreter."""
    size = 9 if smoke else 12
    graph = functional_graph(size, seed=1)
    _compiled_vs_interp("compiled_vs_interp_dtc_e3",
                        deterministic_reachability_program(),
                        graph_database(graph), {"universe": size}, table, smoke)
