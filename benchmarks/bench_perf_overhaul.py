"""Experiment P0 — the cross-layer performance overhaul (perf trajectory).

Unlike the theorem experiments (E1–E10), this module benchmarks the
*interpreter itself*: each test times an identical workload on the seed
implementation (via :func:`repro.core.reference.legacy_mode` /
``memoize=False``, which re-enable the seed's uncached code paths) and on
the optimized one, asserts the optimized run is at least ``TARGET_SPEEDUP``
times faster, and cross-checks that both produce *exactly* the same value.

The measured paths are the three hot-path pathologies the overhaul
eliminated (see DESIGN.md, "Caching architecture"):

* the powerset program of Example 3.12 — set-of-sets construction, where
  the seed recomputed recursive canonical keys on every insert/sort;
* ``define_relation`` over a TC formula — where the seed recomputed the
  whole closure once per row of the defined relation;
* ``define_relation`` over an LFP formula — same, for fixed points;
* the canonical-sort kernel on nested sets — the values-layer micro.

Results are appended to ``BENCH_perf.json`` at the repo root: the first
point of the perf trajectory, for later PRs to extend.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.core import run_program
from repro.core.reference import legacy_mode, value_sort_reference
from repro.core.values import make_set, make_tuple, Atom, value_sort
from repro.logic.eval import define_relation
from repro.logic.formula import LFPAtom, TCAtom, and_, aux, eq, exists, or_, rel, var
from repro.queries import powerset_database, powerset_program
from repro.structures import random_graph

#: The acceptance bar of the perf-overhaul issue.
TARGET_SPEEDUP = 10.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS: dict[str, dict] = {}


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _record(name: str, seed_seconds: float, optimized_seconds: float,
            params: dict, table) -> float:
    speedup = seed_seconds / optimized_seconds
    RESULTS[name] = {
        "seed_seconds": round(seed_seconds, 6),
        "optimized_seconds": round(optimized_seconds, 6),
        "speedup": round(speedup, 2),
        "params": params,
    }
    table(f"P0: {name} (seed vs optimized)",
          ["seed s", "optimized s", "speedup", "target"],
          [[f"{seed_seconds:.4f}", f"{optimized_seconds:.4f}",
            f"{speedup:.1f}x", f">= {TARGET_SPEEDUP:.0f}x"]])
    return speedup


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json():
    """After the module's tests, persist the trajectory point."""
    yield
    if not RESULTS:
        return
    payload = {
        "schema": "repro-perf-trajectory/v1",
        "experiment": "P0 cross-layer performance overhaul",
        "python": platform.python_version(),
        "target_speedup": TARGET_SPEEDUP,
        "entries": RESULTS,
    }
    (REPO_ROOT / "BENCH_perf.json").write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------- workloads


def test_powerset_example_3_12_speedup(table):
    """Example 3.12 at |S| = 10: 1024 subsets, all living inside one
    set-of-sets accumulator — the seed's worst case for key recomputation."""
    size = 10
    program = powerset_program()
    database = powerset_database(size)

    def optimized():
        return run_program(program, database)

    def seed():
        with legacy_mode():
            return run_program(program, database)

    fast_result = optimized()
    with legacy_mode():
        slow_result = run_program(program, database)
    assert len(fast_result) == 2 ** size
    assert fast_result == slow_result

    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("powerset_example_3_12", seed_seconds, optimized_seconds,
                      {"set_size": size}, table)
    assert speedup >= TARGET_SPEEDUP


def _tc_closure_formula() -> TCAtom:
    return TCAtom(("x",), ("y",), rel("E", "x", "y"), (var("u"),), (var("v"),))


def test_tc_define_relation_speedup(table):
    """``define_relation`` over TC: the seed recomputed the closure for every
    one of the n^2 rows; the memoized checker computes it once."""
    graph = random_graph(12, edge_probability=0.2, seed=3)
    formula = _tc_closure_formula()

    def optimized():
        return define_relation(formula, graph, ("u", "v"), memoize=True)

    def seed():
        return define_relation(formula, graph, ("u", "v"), memoize=False)

    assert optimized() == seed()
    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("tc_define_relation", seed_seconds, optimized_seconds,
                      {"graph_size": 12, "rows": 12 * 12}, table)
    assert speedup >= TARGET_SPEEDUP


def _lfp_reachability_formula() -> LFPAtom:
    body = or_(
        eq("x", "y"),
        exists("z", and_(rel("E", "x", "z"), aux("R", "z", "y"))),
    )
    return LFPAtom("R", ("x", "y"), body, (var("u"), var("v")))


def test_lfp_define_relation_speedup(table):
    """``define_relation`` over LFP (the GAP fixed point with free
    endpoints): one fixed-point iteration instead of n^2."""
    graph = random_graph(9, edge_probability=0.25, seed=5)
    formula = _lfp_reachability_formula()

    def optimized():
        return define_relation(formula, graph, ("u", "v"), memoize=True)

    def seed():
        return define_relation(formula, graph, ("u", "v"), memoize=False)

    assert optimized() == seed()
    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("lfp_define_relation", seed_seconds, optimized_seconds,
                      {"graph_size": 9, "rows": 9 * 9}, table)
    assert speedup >= TARGET_SPEEDUP


def test_value_sort_kernel(table):
    """The values-layer micro: canonically sorting nested sets-of-tuples.
    No >= 10x assertion here (the kernel is measured inside fresh values each
    round for the cached side too); recorded for the trajectory."""
    def build():
        return [
            make_set(*(make_tuple(Atom(i % 7), make_set(Atom(i % 5), Atom(j % 11)))
                       for j in range(12)))
            for i in range(250)
        ]

    values = build()
    reference_seconds = _best_of(lambda: value_sort_reference(values * 4), repeats=3)
    cached_seconds = _best_of(lambda: value_sort(values * 4), repeats=3)
    speedup = _record("value_sort_kernel", reference_seconds, cached_seconds,
                      {"values": len(values) * 4}, table)
    assert speedup >= 1.0
