"""Experiment P0 — the cross-layer performance overhaul (perf trajectory).

Unlike the theorem experiments (E1–E10), this module benchmarks the
*interpreter itself*: each test times an identical workload on the seed
implementation (via :func:`repro.core.reference.legacy_mode` /
``memoize=False``, which re-enable the seed's uncached code paths) and on
the optimized one, asserts the optimized run is at least ``TARGET_SPEEDUP``
times faster, and cross-checks that both produce *exactly* the same value.

The measured paths are the three hot-path pathologies the overhaul
eliminated (see DESIGN.md, "Caching architecture"):

* the powerset program of Example 3.12 — set-of-sets construction, where
  the seed recomputed recursive canonical keys on every insert/sort;
* ``define_relation`` over a TC formula — where the seed recomputed the
  whole closure once per row of the defined relation;
* ``define_relation`` over an LFP formula — same, for fixed points;
* the canonical-sort kernel on nested sets — the values-layer micro.

PR 2 extends the trajectory with the *compiled engine* datapoints: the E1
(AGAP, SRL = P) and E3 (TC / DTC) workloads run on the compiled backend
against the PR 1 interpreter, with a >= 2x acceptance bar.

PR 3 adds the *P2 semi-naive* datapoints: the engine's delta-propagating
fixed-point kernels against the naive re-derive-everything strategy the
``reference`` backend preserves, on E3-scale TC / DTC / LFP workloads at
n = 64, with a >= 3x acceptance bar.

PR 4 adds the *P3 relational-planner* datapoints: the logic layer's
set-at-a-time plan backend (formula -> relational-algebra plan, see
``repro.logic.compile``) against the tuple-at-a-time enumeration oracle,
on the Figure-1 query suite (TC / DTC / APATH from the
``CANONICAL_QUERIES`` registry) at n = 64, with a >= 3x acceptance bar.

PR 5 adds the *P4 plan-optimizer* datapoints: the rewrite pipeline of
``repro.logic.optimize`` (selection pushdown, dead-column pruning,
cost-based join reordering with semi/antijoins, join/projection fusion,
semi-naive delta rewriting with cross-round accumulators, common-subplan
sharing) against the raw PR 4 plan backend (``optimize=False``), on the
join-heavy canonical queries at n = 128 over layered / functional /
sparse- and dense-alternating graphs.  The acceptance bar is a >= 3x
*geometric mean* across tc / dtc / apath / agap, plus a structural O(|Δ|)
check: on the TC chain (the GAP fixed point over a path graph) the rows
materialized per fixpoint round must be bounded by the frontier, never by
the accumulated relation.

PR 7 adds the *P7 columnar-backend* datapoints: the bitset/CSR codegen
backend of ``repro.logic.codegen`` (``backend="columnar"``) against the
PR 5 optimized set backend, on the same P4 canonical suite at n = 128
with a >= 10x geometric-mean bar, plus the n = 512 scale points the set
backend cannot finish inside the smoke budget.

Results are merged into ``BENCH_perf.json`` at the repo root — the perf
trajectory, one entry per measured workload, for later PRs to extend.
Run with ``--smoke`` (CI) for smaller sizes and no speedup-ratio
assertions; a smoke run writes its (shrunken-size) ratios to
``BENCH_smoke.json`` instead, which ``benchmarks/check_trajectory.py``
gates against the committed ``benchmarks/BENCH_baseline.json``.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import pytest

from repro.core import Session, run_program
from repro.core.reference import legacy_mode, value_sort_reference
from repro.core.values import make_set, make_tuple, Atom, value_sort
from repro.logic.eval import ModelChecker, define_relation
from repro.logic.formula import LFPAtom, TCAtom, and_, aux, eq, exists, or_, rel, var
from repro.logic.queries import CANONICAL_QUERIES
from repro.queries import (
    agap_baseline,
    agap_database,
    agap_program,
    apath_baseline,
    deterministic_reachability_program,
    graph_database,
    powerset_database,
    powerset_program,
    reachability_program,
)
from repro.structures import (
    Changeset,
    Structure,
    cycle_graph,
    functional_graph,
    layered_graph,
    random_alternating_graph,
    random_graph,
)

#: The acceptance bar of the PR 1 perf-overhaul issue (seed vs optimized).
TARGET_SPEEDUP = 10.0

#: The acceptance bar of the PR 2 engine issue (compiled vs interpreter).
COMPILED_TARGET_SPEEDUP = 2.0

#: The acceptance bar of the PR 3 semi-naive issue (semi-naive vs naive).
SEMINAIVE_TARGET_SPEEDUP = 3.0

#: The acceptance bar of the PR 4 relational-planner issue (plan vs tuple).
PLAN_TARGET_SPEEDUP = 3.0

#: The acceptance bar of the PR 5 plan-optimizer issue: geometric mean of
#: the optimized-vs-raw speedups across tc / dtc / apath / agap at n = 128.
OPTIMIZER_TARGET_GEOMEAN = 3.0

#: The acceptance bar of the PR 7 columnar-backend issue: geometric mean
#: of the columnar-vs-optimized-set speedups across the same suite.
COLUMNAR_TARGET_GEOMEAN = 10.0

#: The acceptance bars of the PR 8 incremental-maintenance issue: a
#: single-edge insert on the memoized TC relation at n = 128 against a
#: full recompute, and the geometric mean across the insert datapoints
#: (tc's O(change) closure patch and apath's honest recompute fallback).
IVM_TC_INSERT_TARGET = 10.0
IVM_INSERT_TARGET_GEOMEAN = 5.0

#: The acceptance bars of the PR 9 out-of-core issue: the chunked CSR
#: interpreter vs the plan backend on an equal-n clustered closure, and
#: the wall-clock budget for a *cold* snapshot load plus the million-edge
#: ``reach`` sentence (the 10 s bar of the issue).
SNAPSHOT_CHUNKED_TC_TARGET = 2.0
SNAPSHOT_COLD_REACH_SECONDS = 10.0

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS: dict[str, dict] = {}


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _record(name: str, seed_seconds: float, optimized_seconds: float,
            params: dict, table, series: str = "P0", baseline: str = "seed",
            target: float = TARGET_SPEEDUP) -> float:
    speedup = seed_seconds / optimized_seconds
    RESULTS[name] = {
        "seed_seconds": round(seed_seconds, 6),
        "optimized_seconds": round(optimized_seconds, 6),
        "speedup": round(speedup, 2),
        "params": params,
    }
    table(f"{series}: {name} ({baseline} vs optimized)",
          [f"{baseline} s", "optimized s", "speedup", "target"],
          [[f"{seed_seconds:.4f}", f"{optimized_seconds:.4f}",
            f"{speedup:.1f}x", f">= {target:.0f}x"]])
    return speedup


@pytest.fixture(scope="module", autouse=True)
def _write_bench_json(request):
    """After the module's tests, merge the new trajectory points into
    ``BENCH_perf.json`` (existing entries for other workloads survive a
    partial run).  Smoke runs measure shrunken sizes with no assertions, so
    they never overwrite the vetted full-size points — they write
    ``BENCH_smoke.json`` instead, which the CI perf gate
    (``benchmarks/check_trajectory.py``) compares against the committed
    smoke baseline."""
    yield
    if not RESULTS:
        return
    smoke = bool(request.config.getoption("--smoke"))
    path = REPO_ROOT / ("BENCH_smoke.json" if smoke else "BENCH_perf.json")
    payload = {
        "schema": "repro-perf-trajectory/v1",
        "experiment": "P0 perf overhaul + P1 compiled engine + P2 semi-naive"
                      " + P3 relational planner + P4 plan optimizer"
                      " + P7 columnar backend"
                      " + P8 incremental maintenance"
                      " + P9 out-of-core snapshots"
                      + (" (smoke sizes)" if smoke else ""),
        "python": platform.python_version(),
        "target_speedup": TARGET_SPEEDUP,
        "compiled_target_speedup": COMPILED_TARGET_SPEEDUP,
        "seminaive_target_speedup": SEMINAIVE_TARGET_SPEEDUP,
        "plan_target_speedup": PLAN_TARGET_SPEEDUP,
        "optimizer_target_geomean": OPTIMIZER_TARGET_GEOMEAN,
        "columnar_target_geomean": COLUMNAR_TARGET_GEOMEAN,
        "ivm_tc_insert_target": IVM_TC_INSERT_TARGET,
        "ivm_insert_target_geomean": IVM_INSERT_TARGET_GEOMEAN,
        "snapshot_chunked_tc_target": SNAPSHOT_CHUNKED_TC_TARGET,
        "snapshot_cold_reach_seconds": SNAPSHOT_COLD_REACH_SECONDS,
        "entries": {},
    }
    if not smoke and path.exists():
        try:
            payload["entries"] = json.loads(path.read_text()).get("entries", {})
        except (ValueError, OSError):
            pass
    payload["entries"].update(RESULTS)
    path.write_text(json.dumps(payload, indent=2) + "\n")


# ----------------------------------------------------------- workloads


def test_powerset_example_3_12_speedup(table, smoke):
    """Example 3.12 at |S| = 10: 1024 subsets, all living inside one
    set-of-sets accumulator — the seed's worst case for key recomputation."""
    size = 8 if smoke else 10
    program = powerset_program()
    database = powerset_database(size)

    def optimized():
        return run_program(program, database)

    def seed():
        with legacy_mode():
            return run_program(program, database)

    fast_result = optimized()
    with legacy_mode():
        slow_result = run_program(program, database)
    assert len(fast_result) == 2 ** size
    assert fast_result == slow_result

    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("powerset_example_3_12", seed_seconds, optimized_seconds,
                      {"set_size": size}, table)
    if not smoke:
        assert speedup >= TARGET_SPEEDUP


def _tc_closure_formula() -> TCAtom:
    return TCAtom(("x",), ("y",), rel("E", "x", "y"), (var("u"),), (var("v"),))


def test_tc_define_relation_speedup(table, smoke):
    """``define_relation`` over TC: the seed recomputed the closure for every
    one of the n^2 rows; the memoized checker computes it once."""
    size = 8 if smoke else 12
    graph = random_graph(size, edge_probability=0.2, seed=3)
    formula = _tc_closure_formula()

    def optimized():
        return define_relation(formula, graph, ("u", "v"), memoize=True)

    def seed():
        return define_relation(formula, graph, ("u", "v"), memoize=False)

    assert optimized() == seed()
    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("tc_define_relation", seed_seconds, optimized_seconds,
                      {"graph_size": size, "rows": size * size}, table)
    if not smoke:
        assert speedup >= TARGET_SPEEDUP


def _lfp_reachability_formula() -> LFPAtom:
    body = or_(
        eq("x", "y"),
        exists("z", and_(rel("E", "x", "z"), aux("R", "z", "y"))),
    )
    return LFPAtom("R", ("x", "y"), body, (var("u"), var("v")))


def test_lfp_define_relation_speedup(table, smoke):
    """``define_relation`` over LFP (the GAP fixed point with free
    endpoints): one fixed-point iteration instead of n^2."""
    size = 7 if smoke else 9
    graph = random_graph(size, edge_probability=0.25, seed=5)
    formula = _lfp_reachability_formula()

    def optimized():
        return define_relation(formula, graph, ("u", "v"), memoize=True)

    def seed():
        return define_relation(formula, graph, ("u", "v"), memoize=False)

    assert optimized() == seed()
    seed_seconds = _best_of(seed, repeats=1)
    optimized_seconds = _best_of(optimized, repeats=3)
    speedup = _record("lfp_define_relation", seed_seconds, optimized_seconds,
                      {"graph_size": size, "rows": size * size}, table)
    if not smoke:
        assert speedup >= TARGET_SPEEDUP


def test_value_sort_kernel(table, smoke):
    """The values-layer micro: canonically sorting nested sets-of-tuples.
    No >= 10x assertion here (the kernel is measured inside fresh values each
    round for the cached side too); recorded for the trajectory."""
    count = 60 if smoke else 250

    def build():
        return [
            make_set(*(make_tuple(Atom(i % 7), make_set(Atom(i % 5), Atom(j % 11)))
                       for j in range(12)))
            for i in range(count)
        ]

    values = build()
    reference_seconds = _best_of(lambda: value_sort_reference(values * 4), repeats=3)
    cached_seconds = _best_of(lambda: value_sort(values * 4), repeats=3)
    speedup = _record("value_sort_kernel", reference_seconds, cached_seconds,
                      {"values": len(values) * 4}, table)
    if not smoke:
        assert speedup >= 1.0


# ------------------------------------------- P1: the compiled engine (PR 2)


def _compiled_vs_interp(name: str, program, database, params: dict,
                        table, smoke: bool, check=None) -> None:
    """Time one workload on the compiled backend against the PR 1
    interpreter, cross-check the values, and record the trajectory point."""
    compiled = Session(program)               # backend="compiled"
    interp = Session(program, backend="interp")
    fast, slow = compiled.run(database), interp.run(database)
    assert fast == slow
    if check is not None:
        assert fast == check
    interp_seconds = _best_of(lambda: interp.run(database), repeats=2)
    compiled_seconds = _best_of(lambda: compiled.run(database), repeats=3)
    params = dict(params, baseline="interp", target=COMPILED_TARGET_SPEEDUP)
    speedup = _record(name, interp_seconds, compiled_seconds, params, table,
                      series="P1", baseline="interp",
                      target=COMPILED_TARGET_SPEEDUP)
    if not smoke:
        assert speedup >= COMPILED_TARGET_SPEEDUP


def test_compiled_engine_agap_e1(table, smoke):
    """E1 (Theorem 3.10, SRL = P): the AGAP program on the compiled engine
    vs the tree-walking interpreter."""
    size = 8 if smoke else 10
    graph = random_alternating_graph(size, seed=0)
    _compiled_vs_interp("compiled_vs_interp_agap_e1", agap_program(),
                        agap_database(graph), {"universe": size}, table, smoke,
                        check=agap_baseline(graph))


def test_compiled_engine_tc_e3(table, smoke):
    """E3 (Corollary 4.2, TC side): SRL reachability on the compiled engine
    vs the interpreter."""
    size = 9 if smoke else 12
    graph = random_graph(size, seed=1)
    _compiled_vs_interp("compiled_vs_interp_tc_e3", reachability_program(),
                        graph_database(graph), {"universe": size}, table, smoke)


def test_compiled_engine_dtc_e3(table, smoke):
    """E3 (Corollary 4.4, DTC side): deterministic reachability on the
    compiled engine vs the interpreter."""
    size = 9 if smoke else 12
    graph = functional_graph(size, seed=1)
    _compiled_vs_interp("compiled_vs_interp_dtc_e3",
                        deterministic_reachability_program(),
                        graph_database(graph), {"universe": size}, table, smoke)


# --------------------------------- P2: semi-naive fixed points (PR 3)


def _successor_map(structure) -> dict[int, list[int]]:
    successors: dict[int, list[int]] = {v: [] for v in structure.universe}
    for u, v in structure.relation("E"):
        successors[u].append(v)
    return successors


def _seminaive_vs_naive(name: str, naive, seminaive, params: dict,
                        table, smoke: bool) -> None:
    """Time one fixed-point workload on the semi-naive kernels against the
    naive (reference-backend) strategy, cross-check the relations agree,
    and record the trajectory point."""
    fast, slow = seminaive(), naive()
    assert set(fast) == set(slow)
    naive_seconds = _best_of(naive, repeats=2)
    seminaive_seconds = _best_of(seminaive, repeats=3)
    params = dict(params, baseline="naive", target=SEMINAIVE_TARGET_SPEEDUP)
    speedup = _record(name, naive_seconds, seminaive_seconds, params, table,
                      series="P2", baseline="naive",
                      target=SEMINAIVE_TARGET_SPEEDUP)
    if not smoke:
        assert speedup >= SEMINAIVE_TARGET_SPEEDUP


def test_seminaive_tc_e3(table, smoke):
    """E3 (Corollary 4.2) at kernel scale: the reflexive transitive closure
    of an n = 64 layered DAG (diameter 15 — every extra round multiplies
    the naive strategy's re-derivation bill), semi-naive delta propagation
    vs the naive re-derive-the-full-composition iteration — threaded
    through the Session facade (compiled backend vs the reference oracle)."""
    layers = 5 if smoke else 16
    graph = layered_graph(layers, 4, seed=7)
    successors = _successor_map(graph)
    production, oracle = Session(), Session(backend="reference")
    _seminaive_vs_naive(
        "seminaive_vs_naive_tc_e3",
        lambda: oracle.transitive_closure(successors),
        lambda: production.transitive_closure(successors),
        {"universe": graph.size}, table, smoke,
    )


def test_seminaive_dtc_e3(table, smoke):
    """E3 (Corollary 4.4) at kernel scale: the deterministic closure of an
    n = 64 functional graph (long out-degree-one chains are the naive
    strategy's worst case: one full re-derivation per chain link)."""
    size = 20 if smoke else 64
    successors = _successor_map(functional_graph(size, seed=11))
    production, oracle = Session(), Session(backend="reference")
    _seminaive_vs_naive(
        "seminaive_vs_naive_dtc_e3",
        lambda: oracle.transitive_closure(successors, deterministic=True),
        lambda: production.transitive_closure(successors, deterministic=True),
        {"universe": size}, table, smoke,
    )


def test_seminaive_lfp_agap(table, smoke):
    """The Lemma 3.6 LFP (APATH over an n = 64 alternating graph): the
    delta-step derivation through the engine's least-fixpoint kernel,
    semi-naive vs naive."""
    size = 20 if smoke else 64
    graph = random_alternating_graph(size, edge_probability=0.045, seed=13)
    _seminaive_vs_naive(
        "seminaive_vs_naive_lfp_agap",
        lambda: apath_baseline(graph, seminaive=False),
        lambda: apath_baseline(graph),
        {"universe": size}, table, smoke,
    )


# ----------------------------- P3: the logic relational planner (PR 4)


def _plan_vs_tuple(name: str, query_name: str, structure, table,
                   smoke: bool) -> None:
    """Time one Figure-1 query through ``define_relation`` on the plan
    backend against the tuple-at-a-time oracle, cross-check the defined
    relations, and record the trajectory point."""
    query = CANONICAL_QUERIES[query_name]
    formula = query.formula()

    def tuple_backend():
        return define_relation(formula, structure, query.variables,
                               backend="tuple")

    def plan_backend():
        return define_relation(formula, structure, query.variables,
                               backend="plan")

    assert plan_backend() == tuple_backend()
    tuple_seconds = _best_of(tuple_backend, repeats=1 if smoke else 2)
    plan_seconds = _best_of(plan_backend, repeats=3)
    params = {"universe": structure.size, "query": query_name,
              "baseline": "tuple", "target": PLAN_TARGET_SPEEDUP}
    speedup = _record(name, tuple_seconds, plan_seconds, params, table,
                      series="P3", baseline="tuple",
                      target=PLAN_TARGET_SPEEDUP)
    if not smoke:
        assert speedup >= PLAN_TARGET_SPEEDUP


def test_plan_tc_e9(table, smoke):
    """Figure 1 / Fact 4.1: all-pairs TC reachability over the n = 64
    layered DAG of the P2 benchmark.  The oracle pays n^2 body evaluations
    to build the edge relation and n^2 more to sweep the defined rows; the
    plan scans E once and feeds the same closure kernel directly."""
    graph = layered_graph(5 if smoke else 16, 4, seed=7)
    _plan_vs_tuple("plan_vs_tuple_tc_e9", "tc", graph, table, smoke)


def test_plan_dtc_e9(table, smoke):
    """Figure 1 / Fact 4.3: all-pairs DTC over an n = 64 functional graph
    (every vertex out-degree one — the pure closure workload)."""
    size = 20 if smoke else 64
    graph = functional_graph(size, seed=11)
    _plan_vs_tuple("plan_vs_tuple_dtc_e9", "dtc", graph, table, smoke)


def test_plan_apath_lfp_e9(table, smoke):
    """Figure 1 / Definition 3.4: the full APATH relation as an LFP over an
    n = 64 alternating graph.  Tuple-at-a-time, every fixed-point stage
    re-evaluates the quantifier-heavy body per candidate row (O(n) per
    quantifier); the plan executes each stage as joins, complements and
    projections over whole relations."""
    size = 20 if smoke else 64
    graph = random_alternating_graph(size, edge_probability=0.045, seed=13)
    _plan_vs_tuple("plan_vs_tuple_apath_e9", "apath", graph, table, smoke)


# --------------------------------- P4: the plan optimizer (PR 5)


def _optimized_vs_plan(name: str, query_name: str, structure, table,
                       smoke: bool) -> float:
    """Time one canonical query through ``define_relation`` on the
    optimized plan backend against the raw PR 4 plan backend, cross-check
    the defined relations and the row-materialization invariant, and
    record the trajectory point.  Returns the speedup (the geomean gate
    asserts across queries, not per query)."""
    from repro.logic.plan import PlanStats

    query = CANONICAL_QUERIES[query_name]
    formula = query.formula()

    def raw_backend():
        return define_relation(formula, structure, query.variables,
                               backend="plan", optimize=False)

    def optimized_backend():
        return define_relation(formula, structure, query.variables,
                               backend="plan", optimize=True)

    optimized_stats, raw_stats = PlanStats(), PlanStats()
    fast = define_relation(formula, structure, query.variables,
                           backend="plan", optimize=True,
                           stats=optimized_stats)
    slow = define_relation(formula, structure, query.variables,
                           backend="plan", optimize=False, stats=raw_stats)
    assert fast == slow
    assert optimized_stats.rows_materialized <= raw_stats.rows_materialized
    # Same repeat count on both sides: min-of-more-samples would bias the
    # ratio toward whichever side got the extra draws.
    repeats = 1 if smoke else 2
    raw_seconds = _best_of(raw_backend, repeats=repeats)
    optimized_seconds = _best_of(optimized_backend, repeats=repeats)
    params = {"universe": structure.size, "query": query_name,
              "baseline": "plan", "target": OPTIMIZER_TARGET_GEOMEAN}
    return _record(name, raw_seconds, optimized_seconds, params, table,
                   series="P4", baseline="plan",
                   target=OPTIMIZER_TARGET_GEOMEAN)


def test_optimizer_canonical_geomean_p4(table, smoke):
    """The P4 acceptance gate: the optimized plan backend against the raw
    PR 4 planner on the four join-heavy canonical queries at n = 128 —
    TC over the layered DAG, DTC over a functional graph, APATH/AGAP over
    a sparse alternating graph — asserting a >= 3x geometric mean.  The
    per-query wins differ in kind: tc/dtc gain from identity-projection
    removal and scan sharing around the closure kernel, apath/agap from
    delta-rewritten fixpoint rounds, cross-round accumulators, shared
    domain products and fused join-projections."""
    if smoke:
        workloads = [
            ("optimized_vs_plan_tc", "tc", layered_graph(5, 4, seed=7)),
            ("optimized_vs_plan_dtc", "dtc", functional_graph(20, seed=11)),
            ("optimized_vs_plan_apath", "apath",
             random_alternating_graph(20, edge_probability=0.1, seed=13)),
            ("optimized_vs_plan_agap", "agap",
             random_alternating_graph(20, edge_probability=0.1, seed=13)),
        ]
    else:
        workloads = [
            ("optimized_vs_plan_tc", "tc", layered_graph(32, 4, seed=7)),
            ("optimized_vs_plan_dtc", "dtc", functional_graph(128, seed=11)),
            ("optimized_vs_plan_apath", "apath",
             random_alternating_graph(128, edge_probability=0.03, seed=13)),
            ("optimized_vs_plan_agap", "agap",
             random_alternating_graph(128, edge_probability=0.03, seed=13)),
        ]
    speedups = [
        _optimized_vs_plan(name, query_name, graph, table, smoke)
        for name, query_name, graph in workloads
    ]
    geomean = 1.0
    for speedup in speedups:
        geomean *= speedup
    geomean **= 1.0 / len(speedups)
    table("P4: optimizer geometric mean (plan vs optimized)",
          ["queries", "geomean", "target"],
          [["tc, dtc, apath, agap", f"{geomean:.2f}x",
            f">= {OPTIMIZER_TARGET_GEOMEAN:.0f}x"]])
    if not smoke:
        assert geomean >= OPTIMIZER_TARGET_GEOMEAN


def test_optimizer_dense_apath_p4(table, smoke):
    """The dense datapoint of the P4 sweep: APATH over a denser
    alternating graph (recorded for the trajectory; the geomean gate runs
    on the canonical sparse instance)."""
    size = 16 if smoke else 96
    probability = 0.15 if smoke else 0.08
    graph = random_alternating_graph(size, edge_probability=probability,
                                     seed=17)
    _optimized_vs_plan("optimized_vs_plan_apath_dense", "apath", graph,
                       table, smoke)


def test_optimizer_delta_rounds_are_frontier_bounded(table, smoke):
    """The structural half of the P4 acceptance: on the TC chain (the GAP
    fixed point over a path graph) the delta-rewritten rounds materialize
    O(frontier) rows each — bounded by a small multiple of n — while the
    raw planner's rounds re-derive the accumulated relation (Omega(n^2)
    total rows over the run)."""
    from repro.logic.plan import PlanStats
    from repro.logic.queries import gap_formula
    from repro.structures import path_graph

    size = 24 if smoke else 64
    graph = path_graph(size)
    formula = gap_formula()
    optimized_stats, raw_stats = PlanStats(), PlanStats()
    fast = define_relation(formula, graph, (), backend="plan",
                           optimize=True, stats=optimized_stats)
    slow = define_relation(formula, graph, (), backend="plan",
                           optimize=False, stats=raw_stats)
    assert fast == slow
    rounds = optimized_stats.fixpoint_round_rows
    assert len(rounds) >= size - 1          # one round per chain link
    assert max(rounds) <= 4 * size          # O(frontier) per round ...
    accumulated = size * (size + 1) // 2
    assert max(rounds) < accumulated        # ... never the accumulated relation
    assert optimized_stats.rows_materialized < raw_stats.rows_materialized / 10
    table("P4: O(delta) fixpoint rounds on the TC chain (gap, path graph)",
          ["n", "rounds", "max round rows", "total rows (optimized)",
           "total rows (raw plan)"],
          [[str(size), str(len(rounds)), str(max(rounds)),
            str(optimized_stats.rows_materialized),
            str(raw_stats.rows_materialized)]])


# --------------------------------- P6: governor overhead (PR 6)

#: The PR 6 acceptance bar: a generous (never-tripping) budget may cost at
#: most 5% geomean over the ungoverned run on the P4 canonical workloads.
GOVERNOR_OVERHEAD_MAX = 1.05


def test_governed_overhead_p6(table, smoke):
    """Resource governance must be near-free when nothing trips: the same
    four P4 canonical queries through the optimized plan backend, once
    ungoverned and once under a generous all-caps budget (deadline, rows,
    rounds, memo — every checkpoint armed, none firing).  The governed run
    must agree exactly and cost <= 5% geomean wall-clock overhead."""
    from repro.core.governor import Budget

    budget = Budget(deadline_seconds=600.0, max_rows_materialized=10**9,
                    max_fixpoint_rounds=10**6, max_memo_entries=10**6)
    if smoke:
        workloads = [
            ("governed_overhead_tc", "tc", layered_graph(5, 4, seed=7)),
            ("governed_overhead_dtc", "dtc", functional_graph(20, seed=11)),
            ("governed_overhead_apath", "apath",
             random_alternating_graph(20, edge_probability=0.1, seed=13)),
            ("governed_overhead_agap", "agap",
             random_alternating_graph(20, edge_probability=0.1, seed=13)),
        ]
    else:
        workloads = [
            ("governed_overhead_tc", "tc", layered_graph(32, 4, seed=7)),
            ("governed_overhead_dtc", "dtc", functional_graph(128, seed=11)),
            ("governed_overhead_apath", "apath",
             random_alternating_graph(128, edge_probability=0.03, seed=13)),
            ("governed_overhead_agap", "agap",
             random_alternating_graph(128, edge_probability=0.03, seed=13)),
        ]
    ratios = []
    for name, query_name, structure in workloads:
        query = CANONICAL_QUERIES[query_name]
        formula = query.formula()

        def ungoverned():
            return define_relation(formula, structure, query.variables,
                                   backend="plan", optimize=True)

        def governed():
            return define_relation(formula, structure, query.variables,
                                   backend="plan", optimize=True,
                                   budget=budget)

        assert governed() == ungoverned()
        repeats = 2 if smoke else 3
        ungoverned_seconds = _best_of(ungoverned, repeats=repeats)
        governed_seconds = _best_of(governed, repeats=repeats)
        ratios.append(ungoverned_seconds / governed_seconds)
        params = {"universe": structure.size, "query": query_name,
                  "baseline": "ungoverned",
                  "target": GOVERNOR_OVERHEAD_MAX}
        _record(name, ungoverned_seconds, governed_seconds, params, table,
                series="P6", baseline="ungoverned", target=1.0)
    geomean = 1.0
    for ratio in ratios:
        geomean *= ratio
    geomean **= 1.0 / len(ratios)
    overhead = 1.0 / geomean
    table("P6: governor overhead geomean (ungoverned vs governed)",
          ["queries", "governed/ungoverned", "max"],
          [["tc, dtc, apath, agap", f"{overhead:.3f}x",
            f"<= {GOVERNOR_OVERHEAD_MAX:.2f}x"]])
    if not smoke:
        assert overhead <= GOVERNOR_OVERHEAD_MAX


# --------------------------------- P7: the columnar backend (PR 7)


def _columnar_vs_optimized(name: str, query_name: str, structure, table,
                           smoke: bool) -> float:
    """Time one canonical query through ``define_relation`` on the
    columnar codegen backend against the PR 5 optimized set backend,
    cross-check the defined relations (and that the columnar rung really
    answered — no silent degradation), and record the trajectory point.
    Returns the speedup; the geomean gate asserts across queries."""
    query = CANONICAL_QUERIES[query_name]
    formula = query.formula()

    def set_backend():
        return define_relation(formula, structure, query.variables,
                               backend="plan", optimize=True)

    def columnar_backend():
        return define_relation(formula, structure, query.variables,
                               backend="columnar", optimize=True)

    events: list = []
    fast = define_relation(formula, structure, query.variables,
                           backend="columnar", optimize=True,
                           degradations=events)
    assert not [e for e in events if e.stage == "columnar"], \
        f"{query_name}: columnar rung degraded: {events}"
    assert fast == set_backend()
    repeats = 1 if smoke else 2
    set_seconds = _best_of(set_backend, repeats=repeats)
    columnar_seconds = _best_of(columnar_backend, repeats=repeats)
    params = {"universe": structure.size, "query": query_name,
              "baseline": "optimized-set", "target": COLUMNAR_TARGET_GEOMEAN}
    return _record(name, set_seconds, columnar_seconds, params, table,
                   series="P7", baseline="optimized-set",
                   target=COLUMNAR_TARGET_GEOMEAN)


def _p7_workloads(smoke: bool, scale: int = 1):
    """The P4 query suite at n = 128 * scale (smoke: n = 20), over graphs
    whose closures are *nontrivial*: a dense random digraph for TC (the
    set backend's join work grows with density, the bitset BFS does not)
    and the n-cycle for DTC (the deterministic worst case — the longest
    chains and the full n^2 closure).  APATH / AGAP keep the P4
    alternating graphs, thinned at scale to hold the edge count."""
    if smoke:
        return [
            ("tc", random_graph(20, 0.25, seed=7)),
            ("dtc", cycle_graph(20)),
            ("apath", random_alternating_graph(20, edge_probability=0.1,
                                               seed=13)),
            ("agap", random_alternating_graph(20, edge_probability=0.1,
                                              seed=13)),
        ]
    size = 128 * scale
    return [
        ("tc", random_graph(size, 0.25, seed=7)),
        ("dtc", cycle_graph(size)),
        ("apath", random_alternating_graph(
            size, edge_probability=0.03 / scale, seed=13)),
        ("agap", random_alternating_graph(
            size, edge_probability=0.03 / scale, seed=13)),
    ]


def test_columnar_canonical_geomean_p7(table, smoke):
    """The P7 acceptance gate: the columnar codegen backend against the
    optimized set backend on the P4 canonical suite at n = 128, asserting
    a >= 10x geometric mean.  The wins compound three effects: dense-int
    bitset/CSR kernels in place of per-tuple hashing, one big-int machine
    word of work per universe row in place of boxed comparisons, and zero
    interpretive dispatch inside steady-state fixpoint rounds (the plan
    is one specialized Python closure)."""
    speedups = [
        _columnar_vs_optimized(f"columnar_vs_optimized_{query_name}",
                               query_name, graph, table, smoke)
        for query_name, graph in _p7_workloads(smoke)
    ]
    geomean = 1.0
    for speedup in speedups:
        geomean *= speedup
    geomean **= 1.0 / len(speedups)
    table("P7: columnar geometric mean (optimized-set vs columnar)",
          ["queries", "geomean", "target"],
          [["tc, dtc, apath, agap", f"{geomean:.2f}x",
            f">= {COLUMNAR_TARGET_GEOMEAN:.0f}x"]])
    if not smoke:
        assert geomean >= COLUMNAR_TARGET_GEOMEAN


def test_columnar_scale_n512_p7(table, smoke):
    """The scale half of the P7 acceptance: the columnar backend runs the
    whole n = 512 suite inside the 20-second smoke budget — a budget the
    set backend blows on APATH *alone* (its n = 128 run takes ~1.4 s and
    the fixpoint work grows superlinearly), which is why no set-side
    timing is attempted here at all.  Full runs record the suite total as
    a trajectory entry against that budget; smoke runs only assert it
    (wall-clock entries at this size would be runner noise in the
    baseline)."""
    budget_seconds = 20.0
    workloads = _p7_workloads(smoke=False, scale=4)     # n = 512 either way
    start = time.perf_counter()
    for query_name, structure in workloads:
        query = CANONICAL_QUERIES[query_name]
        rows = define_relation(query.formula(), structure, query.variables,
                               backend="columnar", optimize=True)
        assert isinstance(rows, frozenset)
    columnar_total = time.perf_counter() - start
    table("P7: columnar n = 512 suite",
          ["queries", "total s", "smoke budget"],
          [["tc, dtc, apath, agap", f"{columnar_total:.2f}",
            f"<= {budget_seconds:.0f} s"]])
    assert columnar_total <= budget_seconds
    if not smoke:
        # ``seed_seconds`` here is the smoke *budget*, not a measured set
        # run: the recorded ratio reads "how far under the budget the set
        # backend cannot meet the columnar suite lands".
        _record("columnar_n512_suite", budget_seconds, columnar_total,
                {"universe": 512, "queries": "tc,dtc,apath,agap",
                 "baseline": "smoke-budget"},
                table, series="P7", baseline="smoke-budget", target=1.0)


# --------------------------------- P8: incremental maintenance (PR 8)


def _copy_structure(structure):
    return Structure(structure.vocabulary, structure.size,
                     dict(structure.relations), intern=structure.intern)


def _ivm_vs_recompute(name: str, query_name: str, structure, op: str,
                      table, smoke: bool) -> float:
    """Time one single-edge update against a memoized canonical relation:
    the maintained path (``ModelChecker.apply_update`` + the now-patched
    ``defined_relation`` read) vs a full from-scratch recompute on the
    post-update structure.  Each repeat applies the inverse update outside
    the timer, so the checker round-trips to the same state; the
    maintained rows are cross-checked against the recompute oracle."""
    query = CANONICAL_QUERIES[query_name]
    formula = query.formula()
    edge_rows = structure.relations["E"]
    if op == "insert":
        edge = next((u, v) for u in range(structure.size)
                    for v in range(structure.size)
                    if u != v and (u, v) not in edge_rows)
        forward = Changeset.inserting("E", edge)
        backward = Changeset.deleting("E", edge)
    else:
        edge = next(iter(sorted(edge_rows)))
        forward = Changeset.deleting("E", edge)
        backward = Changeset.inserting("E", edge)

    checker = ModelChecker(structure, backend="plan")
    checker.defined_relation(formula)
    repeats = 3 if smoke else 5
    maintained_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        checker.apply_update(forward)
        columns, rows = checker.defined_relation(formula)
        maintained_seconds = min(maintained_seconds,
                                 time.perf_counter() - start)
        checker.apply_update(backward)

    patched = _copy_structure(structure)
    patched.apply(forward)
    expected = define_relation(formula, patched, query.variables,
                               backend="plan", optimize=True)
    positions = [columns.index(v) for v in query.variables]
    assert {tuple(row[p] for p in positions) for row in rows} == expected, \
        f"{name}: maintained relation diverged from the recompute oracle"

    def recompute():
        return define_relation(formula, patched, query.variables,
                               backend="plan", optimize=True)

    recompute_seconds = _best_of(recompute, repeats=1 if smoke else 2)
    params = {"universe": structure.size, "query": query_name, "op": op,
              "strategy": dict(checker.ivm_stats), "baseline": "recompute"}
    return _record(name, recompute_seconds, maintained_seconds, params,
                   table, series="P8", baseline="recompute",
                   target=IVM_TC_INSERT_TARGET)


def _p8_workloads(smoke: bool):
    """TC over the P7 dense digraph (the closure strategy's O(change)
    patch) and APATH over the P4 alternating graph (the recompute
    fallback, measured honestly: its "maintained" path pays the dropped
    memo's re-derivation on the next read)."""
    if smoke:
        return {
            "tc": random_graph(20, 0.25, seed=7),
            "apath": random_alternating_graph(20, edge_probability=0.1,
                                              seed=13),
        }
    return {
        "tc": random_graph(128, 0.25, seed=7),
        "apath": random_alternating_graph(128, edge_probability=0.03,
                                          seed=13),
    }


def test_ivm_vs_recompute_p8(table, smoke):
    """The P8 acceptance gate: a single-edge insert on the memoized TC
    relation at n = 128 beats a full recompute by >= 10x (the Dyn-FO
    closure patch touches O(change) bitset words), the insert geomean
    across tc / apath stays >= 5x even with apath's honest ~1x recompute
    fallback, and the single-edge delete datapoint pins the DRed
    over-delete / re-derive path."""
    graphs = _p8_workloads(smoke)
    tc_insert = _ivm_vs_recompute("ivm_vs_recompute_tc_insert", "tc",
                                  graphs["tc"], "insert", table, smoke)
    tc_delete = _ivm_vs_recompute("ivm_vs_recompute_tc_delete", "tc",
                                  graphs["tc"], "delete", table, smoke)
    apath_insert = _ivm_vs_recompute("ivm_vs_recompute_apath_insert",
                                     "apath", graphs["apath"], "insert",
                                     table, smoke)
    geomean = (tc_insert * apath_insert) ** 0.5
    table("P8: insert geometric mean (recompute vs maintained)",
          ["queries", "geomean", "target"],
          [["tc, apath", f"{geomean:.2f}x",
            f">= {IVM_INSERT_TARGET_GEOMEAN:.0f}x"]])
    if not smoke:
        assert tc_insert >= IVM_TC_INSERT_TARGET
        assert geomean >= IVM_INSERT_TARGET_GEOMEAN
        assert tc_delete >= 1.0


# --------------------------------- P9: out-of-core snapshots (PR 9)


def _forced_chunked(callable_):
    """Run ``callable_`` with the dense width threshold dropped to 2, so
    the chunked interpreter handles universes the dense codegen would
    otherwise take (the ratio legs compare backends at equal, modest n)."""
    import repro.logic.codegen as codegen

    original = codegen.DENSE_WIDTH_THRESHOLD
    codegen.DENSE_WIDTH_THRESHOLD = 2
    try:
        return callable_()
    finally:
        codegen.DENSE_WIDTH_THRESHOLD = original


def test_snapshot_closure_p9(table, smoke, tmp_path):
    """The P9 acceptance gates.

    * ``snapshot_chunked_tc`` — full transitive closure on a clustered
      graph, chunked CSR interpreter vs the set-at-a-time plan backend at
      equal n (the closure here is ~n^2/2 rows, so the ratio leg stays at
      modest cluster counts where the plan backend finishes at all).
    * ``snapshot_tc_1e6`` — the out-of-core leg: stream a clustered graph
      to a snapshot, then time a *cold* load plus the ``reach`` sentence
      through the chunked backend against a wall-clock budget.  The full
      run uses the million-edge graph (8000 clusters, n = 2*10^5) and
      asserts the 10 s bar plus bounded resident bytes; smoke shrinks to
      400 clusters (n = 10^4, still past the dense width threshold) with
      a proportionally tighter budget.
    """
    from repro.logic.plan import PlanStats
    from repro.structures import build_snapshot, load_structure
    from repro.structures.zoo import clustered_edges

    # ---- ratio leg: chunked vs plan at equal n ----
    clusters = 40 if smoke else 80
    ratio_snap = tmp_path / "ratio.snap"
    build_snapshot(clustered_edges(clusters), ratio_snap,
                   size=clusters * 25)
    structure = load_structure(ratio_snap)
    query = CANONICAL_QUERIES["tc"]

    def chunked_tc():
        return _forced_chunked(lambda: define_relation(
            query.formula(), structure, query.variables,
            backend="columnar"))

    def plan_tc():
        return define_relation(query.formula(), structure,
                               query.variables, backend="plan")

    chunked_rows = chunked_tc()
    assert chunked_rows == plan_tc(), \
        "chunked closure diverged from the plan backend"
    chunked_seconds = _best_of(chunked_tc, repeats=2 if smoke else 3)
    plan_seconds = _best_of(plan_tc, repeats=1 if smoke else 2)
    ratio = _record(
        "snapshot_chunked_tc", plan_seconds, chunked_seconds,
        {"universe": structure.size, "clusters": clusters,
         "closure_rows": len(chunked_rows), "baseline": "plan"},
        table, series="P9", baseline="plan",
        target=SNAPSHOT_CHUNKED_TC_TARGET)

    # ---- out-of-core leg: cold snapshot load + million-edge reach ----
    big_clusters = 400 if smoke else 8000
    budget_seconds = 5.0 if smoke else SNAPSHOT_COLD_REACH_SECONDS
    big_snap = tmp_path / "big.snap"
    header = build_snapshot(clustered_edges(big_clusters, intra=140),
                            big_snap, size=big_clusters * 25)
    reach = CANONICAL_QUERIES["reach"]
    stats = PlanStats()
    start = time.perf_counter()
    cold = load_structure(big_snap)
    result = define_relation(reach.formula(), cold, reach.variables,
                             backend="columnar", stats=stats)
    elapsed = time.perf_counter() - start
    cold_speedup = _record(
        "snapshot_tc_1e6", budget_seconds, elapsed,
        {"universe": cold.size, "clusters": big_clusters,
         "edges": header["relations"]["E"]["rows"],
         "reachable": () in result,
         "bytes_resident": stats.bytes_resident,
         "baseline": "wall-clock budget"},
        table, series="P9", baseline="cold-budget", target=1.0)
    if not smoke:
        assert header["relations"]["E"]["rows"] >= 1_000_000, \
            "the out-of-core leg must cover a million-edge relation"
        assert cold_speedup >= 1.0, \
            f"cold load + reach took {elapsed:.2f}s (bar: 10s)"
        # Bounded working set: packed payloads, never O(n^2) closures.
        assert stats.bytes_resident < 64 * 1024 * 1024
        assert ratio >= SNAPSHOT_CHUNKED_TC_TARGET
