"""Experiment E2 — Example 3.12: set-height 2 escapes polynomial time.

The powerset program is swept over growing base sets.  Shape to reproduce:
the output cardinality (and the evaluator's insert count) doubles with every
added element — exponential in the input — while every SRL (set-height <= 1)
program from E1 stays polynomial; the restriction checker flags the program
as outside SRL.
"""

from __future__ import annotations

import pytest

from repro.core import Session, run_program
from repro.core.restrictions import SRL
from repro.core.typecheck import database_types
from repro.queries import powerset_baseline, powerset_database, powerset_program
from repro.queries.powerset import doubling_list_program

SIZES = (2, 4, 6, 8, 10)


def test_powerset_output_doubles_per_element(table):
    rows = []
    previous = None
    session = Session(powerset_program())
    for size in SIZES:
        result = session.run(powerset_database(size))
        assert len(result) == 2 ** size
        rows.append([size, len(result), session.stats.inserts, session.stats.max_set_size])
        if previous is not None:
            assert len(result) == 4 * previous  # sizes step by 2
        previous = len(result)
    table("E2: powerset output size vs |S| (exponential, Example 3.12)",
          ["|S|", "|powerset(S)|", "inserts", "max set size"], rows)


def test_powerset_is_flagged_as_outside_srl():
    violations = SRL.check(powerset_program(), database_types(powerset_database(4)))
    assert any("set-height" in v for v in violations)


def test_small_outputs_match_the_baseline():
    result = run_program(powerset_program(), powerset_database(5))
    from repro.core.values import value_to_python

    assert value_to_python(result) == powerset_baseline(range(5))


def test_lrl_doubling_list_is_also_exponential(table):
    rows = []
    for size in SIZES[:4]:
        result = run_program(doubling_list_program(), powerset_database(size))
        assert len(result) == 2 ** size
        rows.append([size, len(result)])
    table("E2: LRL doubling-list length vs |S| (ℒ(LRL) ⊄ FP)", ["|S|", "list length"], rows)


@pytest.mark.parametrize("size", (6, 10))
def test_benchmark_powerset(benchmark, size):
    result = benchmark.pedantic(
        lambda: run_program(powerset_program(), powerset_database(size)),
        rounds=1, iterations=1,
    )
    assert len(result) == 2 ** size
    benchmark.extra_info["output_size"] = 2 ** size
