"""Experiment E10 — Section 7: the hom operator, proper hom, and ordering.

Reproduces the Section 7 discussion around Machiavelli's ``hom``:

* ``hom`` and ``set-reduce`` are interchangeable at set-height <= 1 (the
  translation agrees with the reference implementation);
* *proper* hom instances (commutative + associative op) are order
  independent; improper ones need not be — checked empirically;
* proper hom over a number domain counts (Proposition 7.6), giving EVEN;
* the genuine Cai-Fürer-Immerman companions (over K4 and over a cycle) are
  1-WL-indistinguishable yet non-isomorphic — the raw material of
  Theorem 7.7 — and the cheap cycle-pair stand-in is separated by an
  order-independent SRL query.
"""

from __future__ import annotations

import operator


from repro.core import Atom, make_set, run_expression, standard_library
from repro.core import builders as b
from repro.core.hom import check_proper, count_hom, hom, hom_expr
from repro.core.values import value_to_python
from repro.queries.transitive_closure import graph_database, reachability_program
from repro.structures import (
    are_isomorphic,
    cfi_pair,
    cycle_base,
    cycle_pair,
    colored_graph_to_structure,
    k4_base,
    wl1_indistinguishable,
)
from repro.core import run_program


def test_hom_and_set_reduce_agree(table):
    rows = []
    for ranks in ({1, 2, 3}, {0, 5, 9, 2}, set()):
        expr = hom_expr(
            b.var("S"),
            f_body=lambda x, e: b.insert(x, b.emptyset()),
            op_name="union",
            z=b.emptyset(),
        )
        srl = run_expression(expr, {"S": make_set(*(Atom(r) for r in ranks))},
                             program=standard_library())
        python = hom(lambda x: frozenset({x}), operator.or_, frozenset(), ranks)
        assert value_to_python(srl) == frozenset(python)
        rows.append([sorted(ranks), "agree"])
    table("E10: hom translated to set-reduce vs reference hom", ["input", "verdict"], rows)


def test_proper_vs_improper_hom(table):
    rows = []
    samples = [0, 1, 2, 5, 7]
    cases = [
        ("+", operator.add, True),
        ("max", max, True),
        ("-", operator.sub, False),
        ("concat-ish (2x+y)", lambda x, y: 2 * x + y, False),
    ]
    for name, op, expected_proper in cases:
        proper = check_proper(op, samples)
        assert proper == expected_proper
        forward = hom(lambda x: x, op, 0, [1, 2, 5])
        backward = hom(lambda x: x, op, 0, [5, 2, 1])
        order_free = forward == backward
        if proper:
            assert order_free
        rows.append([name, "proper" if proper else "improper",
                     "order-independent" if order_free else "order-dependent"])
    table("E10: proper hom instances are order-independent",
          ["operator", "proper?", "empirical order behaviour"], rows)


def test_proposition_7_6_counting_with_proper_hom(table):
    rows = []
    for size in range(3, 9):
        counted = count_hom(range(size))
        assert counted == size
        rows.append([size, counted, counted % 2 == 0])
    table("E10: Proposition 7.6 — count(S) = hom(λx.1, +, 0, S)",
          ["|S|", "hom count", "EVEN"], rows)


def test_cfi_pairs_fool_wl_but_are_not_isomorphic(table):
    rows = []
    for name, base in (("cycle C5", cycle_base(5)), ("K4", k4_base())):
        pair = cfi_pair(base)
        fooled = wl1_indistinguishable(pair.untwisted, pair.twisted)
        isomorphic = are_isomorphic(pair.untwisted, pair.twisted)
        assert fooled and not isomorphic
        rows.append([name, pair.untwisted.size, "1-WL indistinguishable", "non-isomorphic"])
    table("E10: Cai-Fürer-Immerman companions (Theorem 7.7 raw material)",
          ["base graph", "|V|", "counting logic", "isomorphism"], rows)


def test_order_independent_srl_query_separates_the_cheap_pair():
    pair = cycle_pair(5)
    single = colored_graph_to_structure(pair.untwisted)
    double = colored_graph_to_structure(pair.twisted)
    assert run_program(reachability_program(), graph_database(single)) != \
        run_program(reachability_program(), graph_database(double))


def test_benchmark_python_hom(benchmark):
    values = list(range(200))
    result = benchmark(hom, lambda x: x, operator.add, 0, values)
    assert result == sum(values)


def test_benchmark_hom_as_set_reduce(benchmark):
    expr = hom_expr(
        b.var("S"),
        f_body=lambda x, e: b.insert(x, b.emptyset()),
        op_name="union",
        z=b.emptyset(),
    )
    database = {"S": make_set(*(Atom(i) for i in range(20)))}
    library = standard_library()
    result = benchmark.pedantic(
        lambda: run_expression(expr, database, program=library), rounds=1, iterations=1
    )
    assert len(result) == 20


def test_benchmark_cfi_wl(benchmark):
    pair = cfi_pair(k4_base())
    result = benchmark(wl1_indistinguishable, pair.untwisted, pair.twisted)
    assert result is True
