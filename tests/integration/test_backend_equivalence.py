"""Differential suite: the three engine backends agree.

Random programs are generated with :mod:`repro.core.builders` (typed enough
to mostly run, loose enough to also exercise the runtime error paths) and
executed through ``Session`` on the ``compiled``, ``interp`` and
``reference`` backends.  The contract pinned here:

* **Values** (or the raised SRL error, type and message) are identical
  across all three backends.

* **Semantically determined counters** — ``inserts``, reduce iterations,
  ``function_calls``, ``new_values`` and the peak-size gauges — are
  identical across all three backends.

* **Steps** are identical between ``interp`` and ``reference`` (same
  tree-walker), and the compiled backend's coarser step count (reduce
  iterations + calls) never exceeds the interpreter's per-node count.

This is the acceptance gate for the compiled engine: any lowering or
codegen bug that changes observable behaviour shows up as a three-way
disagreement here.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Atom, Database, Session, make_set, make_tuple, with_standard_library
from repro.core import builders as b
from repro.core.ast import Program
from repro.core.errors import SRLError

#: Stats that must agree exactly across every backend.
INVARIANT_COUNTERS = (
    "inserts",
    "set_reduce_iterations",
    "list_reduce_iterations",
    "function_calls",
    "new_values",
    "max_set_size",
    "max_accumulator_size",
    "max_list_length",
)


def _database() -> Database:
    return Database({
        "S": make_set(*(Atom(i) for i in range(5))),
        "T": make_set(*(Atom(i) for i in range(2, 7))),
        "R": make_set(*(make_tuple(Atom(i), Atom((i + 1) % 5)) for i in range(5))),
        "p": Atom(3),
    })


class _ProgramGenerator:
    """A seeded generator of small, mostly-well-typed SRL programs."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.fresh = 0

    def _name(self) -> str:
        self.fresh += 1
        return f"v{self.fresh}"

    def expr(self, kind: str, depth: int):
        rng = self.rng
        if kind == "bool":
            choices = ["const", "eq", "leq", "member", "subset", "is-empty", "if",
                       "forsome"]
        elif kind == "atom":
            choices = ["const", "choose", "if", "sel"]
            if depth > 1:
                choices.append("new")
        elif kind == "pair":
            choices = ["tup", "choose-R", "if"]
        else:  # set
            choices = ["db", "emptyset", "insert", "rest", "setop", "map", "if"]
        if depth <= 0:
            choices = choices[:2] if kind != "set" else ["db", "emptyset"]
        return getattr(self, f"_gen_{kind}")(rng.choice(choices), depth)

    # ------------------------------------------------------------- booleans

    def _gen_bool(self, shape: str, depth: int):
        rng = self.rng
        if shape == "const":
            return b.true() if rng.random() < 0.5 else b.false()
        if shape == "eq":
            kind = rng.choice(["atom", "atom", "set", "bool"])
            return b.eq(self.expr(kind, depth - 1), self.expr(kind, depth - 1))
        if shape == "leq":
            return b.leq(self.expr("atom", depth - 1), self.expr("atom", depth - 1))
        if shape == "member":
            return b.call("member", self.expr("atom", depth - 1),
                          self.expr("set", depth - 1))
        if shape == "subset":
            return b.call("subset", self.expr("set", depth - 1),
                          self.expr("set", depth - 1))
        if shape == "is-empty":
            return b.call("is-empty", self.expr("set", depth - 1))
        if shape == "if":
            return b.if_(self.expr("bool", depth - 1), self.expr("bool", depth - 1),
                         self.expr("bool", depth - 1))
        # forsome: an or-accumulated set-reduce over a set
        x, e = self._name(), self._name()
        a, r = self._name(), self._name()
        return b.set_reduce(
            self.expr("set", depth - 1),
            b.lam(x, e, b.eq(b.var(x), b.var(e))),
            b.lam(a, r, b.call("or", b.var(a), b.var(r))),
            b.false(),
            self.expr("atom", depth - 1),
        )

    # ---------------------------------------------------------------- atoms

    def _gen_atom(self, shape: str, depth: int):
        rng = self.rng
        if shape == "const":
            return b.atom(rng.randrange(7))
        if shape == "choose":
            return b.choose(self.expr("set", depth - 1))
        if shape == "new":
            return b.new(self.expr("set", depth - 1))
        if shape == "sel":
            return b.sel(rng.choice((1, 2)), self.expr("pair", depth - 1))
        return b.if_(self.expr("bool", depth - 1), self.expr("atom", depth - 1),
                     self.expr("atom", depth - 1))

    # ---------------------------------------------------------------- pairs

    def _gen_pair(self, shape: str, depth: int):
        if shape == "tup":
            return b.tup(self.expr("atom", depth - 1), self.expr("atom", depth - 1))
        if shape == "choose-R":
            return b.choose(b.var("R"))
        return b.if_(self.expr("bool", depth - 1), self.expr("pair", depth - 1),
                     self.expr("pair", depth - 1))

    # ----------------------------------------------------------------- sets

    def _gen_set(self, shape: str, depth: int):
        rng = self.rng
        if shape == "db":
            return b.var(rng.choice(("S", "T")))
        if shape == "emptyset":
            return b.emptyset()
        if shape == "insert":
            return b.insert(self.expr("atom", depth - 1), self.expr("set", depth - 1))
        if shape == "rest":
            return b.rest(self.expr("set", depth - 1))
        if shape == "setop":
            op = rng.choice(("union", "intersection", "difference"))
            return b.call(op, self.expr("set", depth - 1), self.expr("set", depth - 1))
        if shape == "map":
            x, e = self._name(), self._name()
            a, r = self._name(), self._name()
            body = b.var(x) if rng.random() < 0.5 else \
                b.if_(b.leq(b.var(x), b.var(e)), b.var(x), b.var(e))
            return b.set_reduce(
                self.expr("set", depth - 1),
                b.lam(x, e, body),
                b.lam(a, r, b.insert(b.var(a), b.var(r))),
                b.emptyset(),
                self.expr("atom", depth - 1),
            )
        return b.if_(self.expr("bool", depth - 1), self.expr("set", depth - 1),
                     self.expr("set", depth - 1))

    # -------------------------------------------------------------- program

    def program(self) -> Program:
        rng = self.rng
        program = Program()
        # A couple of generated auxiliary definitions, called via the same
        # pre-bound path the stdlib uses.
        program.define(b.define(
            "aux-flag", ["x"],
            b.call("member", b.var("x"), self.expr("set", 2)),
        ))
        program.define(b.define(
            "aux-grow", ["s"],
            b.insert(self.expr("atom", 1), b.var("s")),
        ))
        kind = rng.choice(["bool", "atom", "set", "pair"])
        main = self.expr(kind, rng.randrange(3, 6))
        if rng.random() < 0.5:
            main = b.if_(b.call("aux-flag", self.expr("atom", 1)),
                         main, self.expr(kind, 2))
        if kind == "set" and rng.random() < 0.5:
            main = b.call("aux-grow", main)
        program.main = main
        return with_standard_library(program)


def _observe(program: Program, backend: str, atom_order=None):
    session = Session(program, backend=backend, atom_order=atom_order)
    try:
        value = session.run(_database())
    except SRLError as error:
        return ("error", type(error).__name__, str(error)), None
    return ("ok", value), session.stats.as_dict()


@pytest.mark.parametrize("seed", range(60))
def test_backends_agree_on_random_programs(seed):
    program = _ProgramGenerator(seed).program()
    compiled, compiled_stats = _observe(program, "compiled")
    interp, interp_stats = _observe(program, "interp")
    reference, reference_stats = _observe(program, "reference")

    assert compiled == interp, f"compiled vs interp diverge on seed {seed}"
    assert interp == reference, f"interp vs reference diverge on seed {seed}"

    if compiled[0] == "ok":
        for counter in INVARIANT_COUNTERS:
            assert compiled_stats[counter] == interp_stats[counter] \
                == reference_stats[counter], (seed, counter)
        # interp and reference are the same tree-walker; compiled steps are
        # the coarser "iterations + calls" measure.
        assert interp_stats["steps"] == reference_stats["steps"]
        assert compiled_stats["steps"] <= interp_stats["steps"]


@pytest.mark.parametrize("seed", range(0, 60, 7))
def test_backends_agree_under_permuted_orders(seed):
    """A random implementation order must not make the backends diverge."""
    program = _ProgramGenerator(seed).program()
    order = list(range(16))
    random.Random(seed * 31 + 1).shuffle(order)
    compiled, _ = _observe(program, "compiled", atom_order=order)
    interp, _ = _observe(program, "interp", atom_order=order)
    assert compiled == interp, f"permuted-order divergence on seed {seed}"


def test_stdlib_calls_agree_across_backends():
    """The Fact 2.4 library, invoked via Session.call on every backend."""
    from repro.core import standard_library

    s = make_set(Atom(1), Atom(2), Atom(3))
    t = make_set(Atom(3), Atom(4))
    results = {}
    for backend in ("compiled", "interp", "reference"):
        session = Session(standard_library(), backend=backend)
        results[backend] = (
            session.call("union", s, t),
            session.call("intersection", s, t),
            session.call("difference", s, t),
            session.call("member", Atom(2), s),
            session.call("subset", t, s),
        )
    assert results["compiled"] == results["interp"] == results["reference"]
