"""CLI exit-code taxonomy tests (PR 6).

``python -m repro`` distinguishes *whose fault it was*: 2 — the input
(parse / type errors, malformed JSON, unreadable files, usage); 3 — a
resource budget (``--timeout`` / ``--max-rows``; retry with a bigger
budget); 4 — the engine (internal errors).  0 stays success.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import EXIT_INPUT, EXIT_INTERNAL, EXIT_RESOURCE, main


@pytest.fixture
def graph_json(tmp_path):
    path = tmp_path / "graph.json"
    path.write_text(json.dumps({
        "E": [[i, i + 1] for i in range(5)],
        "A": [0, 2, 4],
        "D": list(range(6)),
    }))
    return path


class TestInputErrors:
    def test_syntax_error(self, tmp_path, capsys):
        source = tmp_path / "bad.srl"
        source.write_text("(insert (atom 1)")
        assert main([str(source)]) == EXIT_INPUT
        assert "error:" in capsys.readouterr().err

    def test_type_error(self, tmp_path, capsys):
        source = tmp_path / "ill-typed.srl"
        source.write_text("(insert true (atom 1))")
        assert main([str(source)]) == EXIT_INPUT

    def test_malformed_database_json(self, tmp_path, capsys, graph_json):
        source = tmp_path / "p.srl"
        source.write_text("(insert (atom 2) emptyset)")
        db = tmp_path / "bad-db.json"
        db.write_text('{"S": {"unknown": 1}}')
        assert main([str(source), "--db", str(db)]) == EXIT_INPUT
        # The error message is path-qualified: it names the bad binding.
        assert "'S'" in capsys.readouterr().err

    def test_unparsable_database_json(self, tmp_path):
        source = tmp_path / "p.srl"
        source.write_text("(insert (atom 2) emptyset)")
        db = tmp_path / "not-json.json"
        db.write_text("{nope")
        assert main([str(source), "--db", str(db)]) == EXIT_INPUT

    def test_logic_malformed_structure(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"E": "nope"}')
        assert main(["logic", "tc", "--structure", str(bad)]) == EXIT_INPUT
        assert "'E'" in capsys.readouterr().err


class TestResourceErrors:
    def test_logic_timeout(self, graph_json, capsys):
        assert main(["logic", "tc", "--structure", str(graph_json),
                     "--timeout", "0"]) == EXIT_RESOURCE
        err = capsys.readouterr().err
        assert "resource limit" in err
        assert "partial stats" in err

    def test_logic_max_rows(self, graph_json, capsys):
        assert main(["logic", "tc", "--structure", str(graph_json),
                     "--max-rows", "1"]) == EXIT_RESOURCE
        assert "rows_materialized" in capsys.readouterr().err

    def test_program_timeout(self, tmp_path, graph_json):
        source = tmp_path / "p.srl"
        source.write_text(
            "(set-reduce D (lambda (x e) x) (lambda (a r) (insert a r))"
            " emptyset emptyset)"
        )
        assert main([str(source), "--db", str(graph_json),
                     "--timeout", "0"]) == EXIT_RESOURCE

    def test_max_steps_is_a_resource_error_too(self, tmp_path, graph_json):
        source = tmp_path / "p.srl"
        source.write_text(
            "(set-reduce D (lambda (x e) x) (lambda (a r) (insert a r))"
            " emptyset emptyset)"
        )
        assert main([str(source), "--db", str(graph_json),
                     "--max-steps", "2"]) == EXIT_RESOURCE


class TestSuccessStillZero:
    def test_program(self, tmp_path, graph_json):
        source = tmp_path / "p.srl"
        source.write_text("(insert (atom 2) emptyset)")
        assert main([str(source)]) == 0
        # A generous budget changes nothing.
        assert main([str(source), "--timeout", "60"]) == 0

    def test_logic_with_generous_budget(self, graph_json, capsys):
        assert main(["logic", "tc", "--structure", str(graph_json),
                     "--timeout", "60", "--max-rows", "1000000"]) == 0
        assert "rows:" in capsys.readouterr().out


class TestSnapshotSubcommand:
    def test_build_info_query_round_trip(self, tmp_path, graph_json, capsys):
        snap = tmp_path / "g.snap"
        assert main(["snapshot", "build", str(snap),
                     "--structure", str(graph_json)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["snapshot", "info", str(snap)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["size"] == 6 and info["vocabulary"] == {"A": 1, "E": 2}
        # The same query over JSON and over the snapshot must agree.
        assert main(["logic", "tc", "--structure", str(graph_json)]) == 0
        from_json = capsys.readouterr().out
        assert main(["logic", "tc", "--structure", str(snap)]) == 0
        assert capsys.readouterr().out == from_json

    def test_build_from_zoo(self, tmp_path, capsys):
        snap = tmp_path / "zoo.snap"
        assert main(["snapshot", "build", str(snap), "--zoo", "grid",
                     "rows=4", "cols=4"]) == 0
        assert "n = 16" in capsys.readouterr().out
        assert main(["logic", "reach", "--structure", str(snap),
                     "--backend", "columnar"]) == 0

    def test_build_from_edges(self, tmp_path, capsys):
        edges = tmp_path / "edges.json"
        edges.write_text(json.dumps([[0, 1], [1, 2]]))
        snap = tmp_path / "edges.snap"
        assert main(["snapshot", "build", str(snap), "--edges", str(edges),
                     "--size", "3"]) == 0
        assert main(["logic", "tc", "--structure", str(snap)]) == 0
        assert "rows:" in capsys.readouterr().out

    def test_unknown_zoo_family_is_input_error(self, tmp_path, capsys):
        assert main(["snapshot", "build", str(tmp_path / "x.snap"),
                     "--zoo", "mystery"]) == EXIT_INPUT
        assert "unknown zoo family" in capsys.readouterr().err

    def test_bad_zoo_parameter_is_input_error(self, tmp_path, capsys):
        assert main(["snapshot", "build", str(tmp_path / "x.snap"),
                     "--zoo", "grid", "sides=3"]) == EXIT_INPUT

    def test_corrupt_snapshot_is_input_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"RSNP" + b"\xff" * 40)
        assert main(["snapshot", "info", str(bad)]) == EXIT_INPUT
        assert main(["logic", "tc", "--structure", str(bad)]) == EXIT_INPUT

    def test_degradation_prints_a_notice(self, tmp_path, graph_json, capsys):
        from repro.logic.codegen import set_max_columnar_universe

        previous = set_max_columnar_universe(2)
        try:
            assert main(["logic", "reach", "--structure", str(graph_json),
                         "--backend", "columnar", "--stats"]) == 0
        finally:
            set_max_columnar_universe(previous)
        captured = capsys.readouterr()
        assert "degraded mid-run (columnar->plan)" in captured.err
        assert "degraded:    columnar -> plan" in captured.out
        assert "peak_rows_resident" in captured.out

    def test_max_bytes_is_a_resource_error(self, tmp_path, capsys):
        snap = tmp_path / "big.snap"
        assert main(["snapshot", "build", str(snap), "--zoo", "clustered",
                     "clusters=40"]) == 0
        import repro.logic.codegen as codegen
        original = codegen.DENSE_WIDTH_THRESHOLD
        codegen.DENSE_WIDTH_THRESHOLD = 2
        try:
            assert main(["logic", "tc", "--structure", str(snap),
                         "--backend", "columnar",
                         "--max-bytes", "64"]) == EXIT_RESOURCE
        finally:
            codegen.DENSE_WIDTH_THRESHOLD = original
        assert "bytes_resident" in capsys.readouterr().err


def test_taxonomy_constants_are_distinct():
    assert len({0, EXIT_INPUT, EXIT_RESOURCE, EXIT_INTERNAL}) == 4
    assert (EXIT_INPUT, EXIT_RESOURCE, EXIT_INTERNAL) == (2, 3, 4)
