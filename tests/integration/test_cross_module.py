"""Integration tests spanning several subsystems.

These are the end-to-end claims the paper's theorems rest on: the SRL
programs, the logic evaluator, the Turing machines, the PrimRec translation
and the structural encodings must all agree with one another on shared
workloads.
"""

from __future__ import annotations

import pytest

from repro.core import Atom, make_set, run_program
from repro.core.analysis import analyze
from repro.core.order import probe_order_independence
from repro.core.typecheck import database_types
from repro.logic import evaluate
from repro.logic.queries import agap_formula, reachability_dtc, reachability_tc
from repro.machines import compile_machine, parity_machine
from repro.primrec import ADD, MULT, primrec_to_srl, run_translated
from repro.queries import (
    agap_baseline,
    agap_database,
    agap_program,
    deterministic_reachability_program,
    even_program,
    graph_database,
    reachability_program,
)
from repro.structures import (
    cycle_pair,
    colored_graph_to_structure,
    from_database,
    functional_graph,
    random_alternating_graph,
    random_graph,
    wl1_indistinguishable,
)


class TestThreeWayAgreementOnAGAP:
    """Lemma 3.6 + Fact 3.5: the SRL program, the FO+LFP formula and the
    direct fixed-point baseline all compute the same AGAP answers."""

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement(self, seed):
        graph = random_alternating_graph(5, seed=seed)
        baseline = agap_baseline(graph)
        assert evaluate(agap_formula(), graph) == baseline
        assert run_program(agap_program(), agap_database(graph)) == baseline


class TestThreeWayAgreementOnReachability:
    """Section 4: the SRL closure programs agree with the TC/DTC operators
    of the logic layer and with the graph-search baselines."""

    @pytest.mark.parametrize("seed", range(3))
    def test_tc(self, seed):
        graph = random_graph(6, seed=seed)
        assert run_program(reachability_program(), graph_database(graph)) == \
            evaluate(reachability_tc(), graph)

    @pytest.mark.parametrize("seed", range(3))
    def test_dtc(self, seed):
        graph = functional_graph(6, seed=seed)
        assert run_program(deterministic_reachability_program(), graph_database(graph)) == \
            evaluate(reachability_dtc(), graph)


class TestMachineAgainstSRLAndAnalysis:
    """Proposition 6.2 end to end: compile, run, audit."""

    def test_compiled_machine_agrees_and_is_polynomial(self):
        compiled = compile_machine(parity_machine())
        for text in ["", "1", "01", "0110", "11011"]:
            assert compiled.run(text) == (text.count("1") % 2 == 0)
        analysis = compiled.analysis("0101")
        assert "P = SRL" in analysis.classification


class TestPrimRecAgainstSRL:
    """Theorem 5.2 end to end: the translated programs compute the same
    functions as the combinator terms."""

    @pytest.mark.parametrize("x, y", [(0, 0), (1, 3), (3, 2), (4, 4)])
    def test_add_and_mult(self, x, y):
        assert run_translated(primrec_to_srl(ADD), x, y) == ADD(x, y)
        if x <= 3 and y <= 3:
            assert run_translated(primrec_to_srl(MULT), x, y) == MULT(x, y)


class TestStructureDatabaseBridge:
    """Structures survive the trip into SRL databases and back, and the SRL
    programs built on them see exactly the encoded relations."""

    def test_roundtrip_preserves_queries(self):
        graph = random_graph(6, seed=2)
        recovered = from_database(graph.to_database())
        assert recovered.relation("E") == graph.relation("E")


class TestTheorem77Shape:
    """The Section 7 pipeline: a 1-WL-indistinguishable pair is separated by
    an order-using (but order-independent) SRL reachability query."""

    def test_cycle_pair_separated_by_connectivity(self):
        pair = cycle_pair(4)
        assert wl1_indistinguishable(pair.untwisted, pair.twisted)
        single = colored_graph_to_structure(pair.untwisted)
        double = colored_graph_to_structure(pair.twisted)
        # Reachability from vertex 0 to vertex n-1 (an order-independent,
        # polynomial-time SRL query) tells them apart.
        answer_single = run_program(reachability_program(), graph_database(single))
        answer_double = run_program(reachability_program(), graph_database(double))
        assert answer_single != answer_double


class TestOrderIndependenceAcrossTheBoard:
    """EVEN and AGAP are order-independent; the analysis classifies both."""

    def test_even(self):
        database = {"S": make_set(*(Atom(i) for i in range(6)))}
        assert probe_order_independence(even_program(), database, trials=8).independent
        analysis = analyze(even_program(), input_types=database_types(database))
        assert "L = BASRL" in analysis.classification

    def test_agap(self):
        graph = random_alternating_graph(4, seed=1)
        database = agap_database(graph)
        assert probe_order_independence(agap_program(), database, trials=4).independent
        analysis = analyze(agap_program(), input_types=database_types(database))
        assert "P = SRL" in analysis.classification
