"""Clean-shutdown tests (P10 satellite): SIGINT/SIGTERM in long-running
subcommands map to cooperative cancellation — a typed
:class:`EvaluationCancelled` with partial stats and exit 3, never a
``KeyboardInterrupt`` traceback mid-write.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.__main__ import _cancellable_stream
from repro.core.errors import EvaluationCancelled
from repro.core.governor import CancelToken, cancel_on_signals

# ------------------------------------------------------ the context manager


def test_sigint_cancels_the_token_without_raising():
    token = CancelToken()
    with cancel_on_signals(token):
        os.kill(os.getpid(), signal.SIGINT)
        # Delivery is synchronous for a self-signal on the main thread.
        assert token.cancelled
    assert token.cancelled


def test_first_signal_restores_previous_handlers():
    """After the first signal the *previous* handlers come back, so a
    second signal is the blunt way out — the user is never trapped."""
    token = CancelToken()
    before = signal.getsignal(signal.SIGINT)
    with cancel_on_signals(token):
        installed = signal.getsignal(signal.SIGINT)
        assert installed is not before
        os.kill(os.getpid(), signal.SIGINT)
        assert signal.getsignal(signal.SIGINT) is before
    assert signal.getsignal(signal.SIGINT) is before


def test_handlers_restored_on_clean_exit():
    token = CancelToken()
    before = signal.getsignal(signal.SIGTERM)
    with cancel_on_signals(token):
        pass
    assert signal.getsignal(signal.SIGTERM) is before
    assert not token.cancelled


def test_worker_thread_is_a_passthrough():
    """Only the main thread may install handlers; elsewhere the context
    manager is a no-op that still yields the token."""
    token = CancelToken()
    seen = []

    def run():
        with cancel_on_signals(token) as yielded:
            seen.append(yielded)

    thread = threading.Thread(target=run)
    thread.start()
    thread.join(timeout=5.0)
    assert seen == [token]


def test_cancellable_stream_stops_at_the_token():
    token = CancelToken()
    stream = _cancellable_stream(iter(range(100_000)), token, every=8)
    for _ in range(8):
        next(stream)
    token.cancel()
    with pytest.raises(EvaluationCancelled):
        for _ in stream:
            pass


def test_cancellable_stream_passes_through_when_calm():
    token = CancelToken()
    assert list(_cancellable_stream(iter([1, 2, 3]), token)) == [1, 2, 3]


# ----------------------------------------------------------- end to end


def _spawn(arguments, cwd=None):
    import repro

    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    return subprocess.Popen(
        [sys.executable, "-m", *arguments],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=environment, cwd=cwd, text=True)


def test_fuzz_cli_sigint_exits_3_with_partial_stats():
    """The fuzz sweep checks its token between cases, so SIGINT lands
    deterministically: exit 3 and a partial-progress line on stderr."""
    process = _spawn(["repro.testing.fuzz", "--cases", "1000000"])
    try:
        time.sleep(1.5)  # let it get through startup and some cases
        process.send_signal(signal.SIGINT)
        _, stderr = process.communicate(timeout=60.0)
        assert process.returncode == 3, stderr
        assert "cancelled after" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
