"""Tests for primitive recursion, the Fact 5.4 toolkit, the Gödel encoding
and the Theorem 5.2 translation into SRL + new."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.primrec import (
    ADD,
    BIT,
    COND,
    CHOOSE_PR,
    Compose,
    Const,
    DIV2,
    DIV_POW2,
    EQ,
    EXP,
    INSERT_PR,
    IS_ZERO,
    LESS,
    LOG,
    MOD2,
    MOD_POW2,
    MONUS,
    MULT,
    NEW_PR,
    PRED,
    PrimRec,
    Proj,
    REST_PR,
    RLOG,
    SIGN,
    Succ,
    Zero,
    choose_number,
    decode_element,
    decode_set,
    encode_element,
    encode_set,
    insert_number,
    nat_to_set,
    new_number,
    primrec_to_srl,
    rest_number,
    run_translated,
    set_to_nat,
)

small = st.integers(min_value=0, max_value=12)
tiny = st.integers(min_value=0, max_value=6)


class TestCombinators:
    def test_initial_functions(self):
        assert Zero(3)(5, 6, 7) == 0
        assert Succ()(4) == 5
        assert Proj(2, 3)(10, 20, 30) == 20

    def test_arity_checks(self):
        with pytest.raises(TypeError):
            Succ()(1, 2)
        with pytest.raises(TypeError):
            ADD(1)
        with pytest.raises(TypeError):
            ADD(-1, 2)
        with pytest.raises(TypeError):
            ADD(True, 2)

    def test_projection_validation(self):
        with pytest.raises(ValueError):
            Proj(4, 3)

    def test_compose_validation(self):
        with pytest.raises(ValueError):
            Compose(ADD, (Succ(),))  # ADD needs two inner functions
        with pytest.raises(ValueError):
            PrimRec(base=Zero(1), step=Zero(1))  # step must have arity base+2

    def test_primrec_definition_unfolds(self):
        double = PrimRec(base=Zero(0), step=Compose(Succ(), (Compose(Succ(), (Proj(2, 2),)),)))
        assert [double(i) for i in range(5)] == [0, 2, 4, 6, 8]


class TestArithmetic:
    @given(small, small)
    def test_add_mult_monus(self, x, y):
        assert ADD(x, y) == x + y
        assert MULT(x, y) == x * y
        assert MONUS(x, y) == max(x - y, 0)

    @given(small)
    def test_unary_helpers(self, x):
        assert PRED(x) == max(x - 1, 0)
        assert SIGN(x) == (1 if x else 0)
        assert IS_ZERO(x) == (1 if x == 0 else 0)
        assert MOD2(x) == x % 2
        assert DIV2(x) == x // 2

    @given(small, small)
    def test_comparisons(self, x, y):
        assert EQ(x, y) == int(x == y)
        assert LESS(x, y) == int(x < y)

    @given(tiny, st.integers(min_value=0, max_value=3))
    def test_exp(self, base, exponent):
        assert EXP(base, exponent) == base ** exponent

    @given(small, st.integers(min_value=0, max_value=4))
    def test_div_mod_bit(self, n, j):
        assert DIV_POW2(n, j) == n // (2 ** j)
        assert MOD_POW2(n, j) == n % (2 ** j)
        assert BIT(n, j) == (n >> j) & 1

    # RLOG drives EXP(2, n) through unary recursion, which is exponential in
    # n: measured, n = 12 takes ~15 s and n = 14 over four minutes, so the
    # generator is capped at the feasibility cliff (the seed's bound of 20
    # could never finish) and the example budget kept small — this is what
    # lets the nightly full-suite CI job actually run the slow markers.
    @pytest.mark.slow
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=12))
    def test_log_rlog(self, n):
        expected_log = n.bit_length() - 1 if n >= 1 else 0
        assert LOG(n) == max(expected_log, 0)
        expected_rlog = (n & -n).bit_length() - 1 if n else 0
        assert RLOG(n) == expected_rlog

    @given(small, small, small)
    def test_cond(self, b, i, j):
        assert COND(b, i, j) == (i if b >= 1 else j)


class TestGodelEncoding:
    @given(st.frozensets(st.integers(min_value=0, max_value=10), max_size=8))
    def test_roundtrip(self, ranks):
        assert decode_set(encode_set(ranks)) == ranks

    def test_element_codes(self):
        assert encode_element(3) == 8
        assert decode_element(8) == 3
        with pytest.raises(ValueError):
            decode_element(6)

    # CHOOSE_PR/REST_PR expand EXP/MOD_POW2 unary terms whose cost explodes
    # with the code value (code = 16 already exceeds four minutes); capped
    # at the measured feasibility cliff so the nightly job can run it — the
    # seed's bound of 200 was unreachable.
    @pytest.mark.slow
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=1, max_value=12))
    def test_choose_and_rest_match_the_set_semantics(self, code):
        ranks = decode_set(code)
        assert decode_element(choose_number(code)) == min(ranks)
        assert decode_set(rest_number(code)) == ranks - {min(ranks)}
        # And the primitive recursive terms agree with the references.
        assert CHOOSE_PR(code) == choose_number(code)
        assert REST_PR(code) == rest_number(code)

    @pytest.mark.slow  # INSERT_PR's Cond/Bit terms are unary-recursion heavy
    @given(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=60))
    def test_insert_matches_the_set_semantics(self, rank, code):
        element = encode_element(rank)
        assert decode_set(insert_number(element, code)) == decode_set(code) | {rank}
        assert INSERT_PR(element, code) == insert_number(element, code)

    @pytest.mark.slow  # NEW_PR = Exp(2, Log(S) + 1), again unary recursion
    @given(st.integers(min_value=1, max_value=60))
    def test_new_is_outside_the_set(self, code):
        fresh = new_number(code)
        assert decode_element(fresh) not in decode_set(code)
        assert NEW_PR(code) == fresh


class TestTheorem52Translation:
    def test_nat_set_roundtrip(self):
        assert set_to_nat(nat_to_set(5)) == 5
        assert set_to_nat(nat_to_set(0)) == 0

    @settings(max_examples=10, deadline=None)
    @given(tiny, tiny)
    def test_translated_add(self, x, y):
        assert run_translated(primrec_to_srl(ADD), x, y) == x + y

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))
    def test_translated_mult(self, x, y):
        assert run_translated(primrec_to_srl(MULT), x, y) == x * y

    @settings(max_examples=10, deadline=None)
    @given(tiny, tiny)
    def test_translated_monus(self, x, y):
        assert run_translated(primrec_to_srl(MONUS), x, y) == max(x - y, 0)

    @settings(max_examples=10, deadline=None)
    @given(tiny)
    def test_translated_pred_and_sign(self, x):
        assert run_translated(primrec_to_srl(PRED), x) == max(x - 1, 0)
        assert run_translated(primrec_to_srl(SIGN), x) == (1 if x else 0)

    def test_translated_constants_and_projections(self):
        assert run_translated(primrec_to_srl(Const(3, 1)), 9) == 3
        assert run_translated(primrec_to_srl(Proj(2, 3)), 4, 5, 6) == 5
        assert run_translated(primrec_to_srl(Zero(2)), 4, 5) == 0
        assert run_translated(primrec_to_srl(Succ()), 4) == 5

    def test_translation_uses_new_only_for_succ(self):
        from repro.core.ast import New, walk

        translated = primrec_to_srl(ADD)
        new_sites = [
            node
            for definition in translated.program.definitions.values()
            for node in walk(definition.body)
            if isinstance(node, New)
        ]
        # ADD's only succ is the step function: exactly one new-site.
        assert len(new_sites) == 1

    def test_arity_check(self):
        with pytest.raises(TypeError):
            run_translated(primrec_to_srl(ADD), 1)

    def test_translated_program_is_outside_plain_srl(self):
        from repro.core.restrictions import SRL, SRL_NEW

        translated = primrec_to_srl(ADD)
        program = translated.program
        program.main = None
        # It uses new, so it is not in SRL but is in SRL+new.
        assert SRL.check(program) != []
        assert SRL_NEW.is_member(program)
