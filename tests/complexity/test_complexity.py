"""Tests for the complexity-class landscape (Figure 1, hierarchy, classifier)."""

from __future__ import annotations

import pytest

from repro.complexity import (
    LOGSPACE,
    MACHINE_CLASSES,
    PRIMREC,
    PTIME,
    classify_program,
    figure1_lattice,
    hierarchy_containments,
    hierarchy_level,
    iterated_powerset_size,
    level_contained_in,
    tower,
)
from repro.core.typecheck import database_types
from repro.queries import (
    agap_database,
    agap_program,
    even_database,
    even_program,
    powerset_database,
    powerset_program,
)
from repro.queries.powerset import doubling_list_program
from repro.structures import random_alternating_graph


class TestFigure1:
    def test_chain_order(self):
        lattice = figure1_lattice()
        names = [c.name for c in lattice.chain()]
        assert names[0] == "(FO(wo<=) + LFP)"
        assert names[-1] == "(FO + LFP) = P"

    def test_containment_is_transitive_and_antisymmetric(self):
        lattice = figure1_lattice()
        assert lattice.is_contained("fo_lfp_unordered", "p")
        assert not lattice.is_contained("p", "fo_lfp_unordered")
        assert lattice.is_contained("order_independent_p", "order_independent_p")

    def test_every_edge_is_proper_and_has_a_witness(self):
        lattice = figure1_lattice()
        edges = list(lattice.edges())
        assert len(edges) == 3
        for edge in edges:
            assert edge.proper
            assert edge.witness
            assert edge.evidence

    def test_unknown_class_rejected(self):
        from repro.complexity.classes import Containment

        lattice = figure1_lattice()
        with pytest.raises(KeyError):
            lattice.add_containment(Containment("p", "nonsense", True, "", ""))

    def test_containment_closure_is_the_chain(self):
        lattice = figure1_lattice()
        closure = lattice.containment_closure()
        keys = list(lattice.classes)
        # Reflexive on every registered class, upward along the chain only.
        expected = {(k, k) for k in keys} | {
            (keys[i], keys[j]) for i in range(len(keys))
            for j in range(i + 1, len(keys))
        }
        assert closure == expected


class TestHierarchyContainments:
    def test_chain_closure(self):
        assert hierarchy_containments(3) == {
            (1, 1), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3),
        }

    def test_level_contained_in(self):
        assert level_contained_in(1, 4)
        assert level_contained_in(2, 2)
        assert not level_contained_in(4, 1)
        with pytest.raises(ValueError):
            level_contained_in(0, 1)
        with pytest.raises(ValueError):
            hierarchy_containments(0)


class TestHierarchy:
    def test_tower(self):
        assert tower(0, 5) == 5
        assert tower(1, 3) == 8
        assert tower(2, 2) == 16
        with pytest.raises(ValueError):
            tower(-1, 2)

    def test_iterated_powerset_size(self):
        assert iterated_powerset_size(0, 4) == 4
        assert iterated_powerset_size(1, 4) == 16
        assert iterated_powerset_size(2, 2) == 16

    def test_levels(self):
        assert "P" in hierarchy_level(1).time_class
        assert "EXPTIME" in hierarchy_level(2).time_class
        assert "2_2" in hierarchy_level(3).time_class
        with pytest.raises(ValueError):
            hierarchy_level(0)

    def test_machine_classes_have_references(self):
        for cls in MACHINE_CLASSES:
            assert cls.paper_reference
            assert cls.captured_by


class TestClassifier:
    def test_agap_is_p(self):
        graph = random_alternating_graph(4, seed=0)
        verdict = classify_program(agap_program(), database_types(agap_database(graph)))
        assert verdict.machine_class is PTIME
        assert verdict.restriction.name == "SRL"
        assert "P" in verdict.summary()

    def test_even_is_logspace(self):
        verdict = classify_program(even_program(), database_types(even_database(4)))
        assert verdict.machine_class is LOGSPACE

    def test_powerset_sits_in_the_hierarchy(self):
        verdict = classify_program(powerset_program(), database_types(powerset_database(3)))
        assert verdict.machine_class is None
        assert verdict.hierarchy is not None
        assert verdict.hierarchy.set_height == 2

    def test_lists_are_primrec(self):
        verdict = classify_program(doubling_list_program(),
                                   database_types(powerset_database(3)))
        assert verdict.machine_class is PRIMREC
