"""Tests for the Turing machines and the Proposition 6.2 compiler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SRL
from repro.core.typecheck import database_types
from repro.machines import (
    BLANK,
    LEFT,
    RIGHT,
    TuringMachine,
    all_ones_machine,
    compile_machine,
    contains_ab_machine,
    last_symbol_one_machine,
    parity_logspace_machine,
    parity_machine,
)

binary_strings = st.text(alphabet="01", max_size=8)
ab_strings = st.text(alphabet="ab", max_size=8)


class TestTuringMachine:
    def test_parity_machine(self):
        m = parity_machine()
        assert m.accepts("0110")
        assert not m.accepts("0111")
        assert m.accepts("")

    def test_contains_ab(self):
        m = contains_ab_machine()
        assert m.accepts("bbab")
        assert not m.accepts("bba")

    def test_all_ones_and_last_symbol(self):
        assert all_ones_machine().accepts("111")
        assert not all_ones_machine().accepts("101")
        assert last_symbol_one_machine().accepts("01")
        assert not last_symbol_one_machine().accepts("10")

    def test_run_result_details(self):
        result = parity_machine().run("11")
        assert result.halted
        assert result.steps >= 2
        assert result.state == "even"

    def test_invalid_input_symbol(self):
        with pytest.raises(ValueError):
            parity_machine().run("2")

    def test_transition_validation(self):
        with pytest.raises(ValueError):
            TuringMachine(
                name="broken",
                states=("q",),
                input_alphabet=("0",),
                tape_alphabet=("0", BLANK),
                transitions={("q", "0"): ("missing", "0", RIGHT)},
                start_state="q",
                accept_states=frozenset({"q"}),
            )
        with pytest.raises(ValueError):
            TuringMachine(
                name="bad-move",
                states=("q",),
                input_alphabet=("0",),
                tape_alphabet=("0", BLANK),
                transitions={("q", "0"): ("q", "0", 7)},
                start_state="q",
                accept_states=frozenset({"q"}),
            )

    def test_head_is_clamped_to_the_tape_window(self):
        # A machine that insists on moving left stays on cell 0.
        m = TuringMachine(
            name="left-runner",
            states=("q",),
            input_alphabet=("0",),
            tape_alphabet=("0", BLANK),
            transitions={("q", "0"): ("q", "0", LEFT)},
            start_state="q",
            accept_states=frozenset(),
        )
        result = m.run("000", max_steps=10)
        assert result.head == 0
        assert not result.halted


class TestLogspaceMachine:
    def test_parity(self):
        m = parity_logspace_machine()
        assert m.accepts("0110")
        assert not m.accepts("0111")

    def test_space_accounting_and_bound(self):
        m = parity_logspace_machine()
        result = m.run("010101")
        assert result.work_cells_used <= 1
        # The bound is enforced when requested.
        m.run("010101", work_bound=1)


class TestCompiledMachines:
    @pytest.mark.parametrize("factory", [
        parity_machine, contains_ab_machine, all_ones_machine, last_symbol_one_machine,
    ])
    def test_compiled_program_matches_direct_run(self, factory):
        machine = factory()
        compiled = compile_machine(machine)
        samples = {
            "parity": ["", "0", "1", "0110", "0111", "10101"],
            "ab": ["", "a", "b", "ab", "ba", "bbab", "aaa"],
        }["ab" if "a" in machine.input_alphabet else "parity"]
        for text in samples:
            direct = machine.run(text, tape_length=compiled.tape_length_for(text)).accepted
            assert compiled.run(text) == direct

    @settings(max_examples=15, deadline=None)
    @given(binary_strings)
    def test_compiled_parity_property(self, text):
        compiled = compile_machine(parity_machine())
        assert compiled.run(text) == (text.count("1") % 2 == 0)

    @settings(max_examples=15, deadline=None)
    @given(ab_strings)
    def test_compiled_contains_ab_property(self, text):
        compiled = compile_machine(contains_ab_machine())
        assert compiled.run(text) == ("ab" in text)

    def test_compiled_program_is_plain_srl(self):
        compiled = compile_machine(parity_machine())
        types = database_types(compiled.database_for("0101"))
        assert SRL.is_member(compiled.program, types)

    def test_compiled_width_and_depth_match_proposition_6_2(self):
        compiled = compile_machine(parity_machine())
        analysis = compiled.analysis("0101")
        # The program constructs only bounded-width tuples and has constant
        # depth, independent of the input length.
        assert analysis.width <= 5
        assert analysis.depth <= 3
        assert "P = SRL" in analysis.classification

    def test_quadratic_step_growth(self):
        # Proposition 6.2's cost analysis: the evaluator cost grows roughly
        # quadratically (each of the n simulated steps scans the tape).
        compiled = compile_machine(parity_machine())
        _, stats_small = compiled.run_with_stats("1" * 8)
        _, stats_large = compiled.run_with_stats("1" * 16)
        ratio = stats_large.steps / stats_small.steps
        assert 2.5 < ratio < 6.0

    def test_multiple_passes_do_not_change_the_verdict(self):
        # A halted configuration is a fixpoint of the step function, so
        # composing extra passes leaves the answer unchanged.
        one_pass = compile_machine(parity_machine(), passes=1)
        two_passes = compile_machine(parity_machine(), passes=2)
        for text in ["", "1", "0110", "1110"]:
            assert one_pass.run(text) == two_passes.run(text)

    def test_passes_must_be_positive(self):
        with pytest.raises(ValueError):
            compile_machine(parity_machine(), passes=0)
