"""Tests for the paper's concrete programs against their Python baselines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import run_program
from repro.core.order import certify_order_independence, probe_order_independence
from repro.core.restrictions import BASRL, SRL
from repro.core.typecheck import database_types
from repro.core.values import value_to_python
from repro.queries import (
    agap_baseline,
    agap_database,
    agap_program,
    apath_baseline,
    apath_program,
    build_company_data,
    colleague_pairs_program,
    company_database,
    compose_permutations_baseline,
    departments_fully_senior_program,
    deterministic_reachability_program,
    deterministic_reachable_baseline,
    doubling_list_program,
    employees_in_department_program,
    even_baseline,
    even_database,
    even_program,
    even_via_counting,
    evaluate_arithmetic,
    first_employee_is_senior_program,
    graph_database,
    im_baseline,
    im_database,
    im_program,
    powerset_baseline,
    powerset_database,
    powerset_program,
    reachability_program,
    reachable_baseline,
    run_iterated_product,
)
from repro.core import Evaluator
from repro.structures import (
    functional_graph,
    random_alternating_graph,
    random_graph,
    random_permutations,
)

small_nat = st.integers(min_value=0, max_value=10)


class TestAGAP:
    @pytest.mark.parametrize("seed", range(5))
    def test_srl_program_matches_baseline(self, seed):
        graph = random_alternating_graph(6, seed=seed)
        assert run_program(agap_program(), agap_database(graph)) == agap_baseline(graph)

    def test_quadratic_variant_agrees_with_linear(self):
        graph = random_alternating_graph(5, seed=11)
        linear = run_program(agap_program(quadratic=False), agap_database(graph))
        quadratic = run_program(agap_program(quadratic=True), agap_database(graph))
        assert linear == quadratic == agap_baseline(graph)

    def test_apath_relation_matches_baseline(self):
        graph = random_alternating_graph(5, seed=3)
        evaluator = Evaluator(apath_program())
        relation = evaluator.call("apath-iterate", database=agap_database(graph))
        assert value_to_python(relation) == apath_baseline(graph)

    def test_reflexivity(self):
        graph = random_alternating_graph(4, seed=7)
        assert all((v, v) in apath_baseline(graph) for v in graph.universe)

    def test_agap_program_is_in_srl_but_not_basrl(self):
        graph = random_alternating_graph(4, seed=0)
        types = database_types(agap_database(graph))
        assert SRL.is_member(agap_program(), types)
        assert not BASRL.is_member(agap_program(), types)

    def test_agap_is_order_independent_empirically(self):
        graph = random_alternating_graph(5, seed=2)
        report = probe_order_independence(agap_program(), agap_database(graph), trials=5)
        assert report.independent


class TestTransitiveClosure:
    @pytest.mark.parametrize("seed", range(5))
    def test_reachability_matches_baseline(self, seed):
        graph = random_graph(7, seed=seed)
        assert run_program(reachability_program(), graph_database(graph)) == \
            reachable_baseline(graph)

    @pytest.mark.parametrize("seed", range(5))
    def test_deterministic_reachability_matches_baseline(self, seed):
        graph = functional_graph(7, seed=seed)
        assert run_program(deterministic_reachability_program(), graph_database(graph)) == \
            deterministic_reachable_baseline(graph)

    def test_dtc_is_a_subset_of_tc(self):
        graph = random_graph(6, seed=9, edge_probability=0.3)
        database = graph_database(graph)
        tc_answer = run_program(reachability_program(), database)
        dtc_answer = run_program(deterministic_reachability_program(), database)
        if dtc_answer:
            assert tc_answer


class TestBASRLArithmetic:
    @given(small_nat, small_nat)
    @settings(max_examples=20, deadline=None)
    def test_add(self, x, y):
        assert evaluate_arithmetic("add", x, y, size=32) == x + y

    @given(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_mult(self, x, y):
        assert evaluate_arithmetic("mult", x, y, size=32) == x * y

    @pytest.mark.parametrize("base, exponent", [(2, 0), (2, 3), (3, 2), (5, 1), (1, 4)])
    def test_expn(self, base, exponent):
        assert evaluate_arithmetic("expn", base, exponent, size=32) == base ** exponent

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_shift_and_parity(self, x):
        assert evaluate_arithmetic("shift", x, size=32) == x // 2
        assert evaluate_arithmetic("parity", x, size=32) == (x % 2 == 1)

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=15))
    @settings(max_examples=20, deadline=None)
    def test_rem_and_bit(self, i, a):
        assert evaluate_arithmetic("rem", i, a, size=32) == a >> i
        assert evaluate_arithmetic("bit", i, a, size=32) == bool((a >> i) & 1)

    def test_saturation_at_the_domain_boundary(self):
        assert evaluate_arithmetic("increment", 15, size=16) == 15
        assert evaluate_arithmetic("decrement", 0, size=16) == 0
        assert evaluate_arithmetic("add", 12, 9, size=16) == 15

    def test_arithmetic_is_basrl(self):
        from repro.queries.arithmetic_basrl import arithmetic_database, arithmetic_program
        from repro.core import builders as b

        program = arithmetic_program()
        program.main = b.call("add", b.atom(2), b.atom(3))
        types = database_types(arithmetic_database(8))
        assert BASRL.is_member(program, types, main=program.main)


class TestIteratedPermutationProduct:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_baseline(self, seed):
        perms = random_permutations(3, 4, seed=seed)
        product = compose_permutations_baseline(perms)
        for i in range(4):
            assert run_iterated_product(perms, i) == product[i]

    def test_im_decision_program(self):
        perms = random_permutations(3, 4, seed=5)
        product = compose_permutations_baseline(perms)
        from repro.core import Atom

        database = im_database(perms, 1)
        database.bind("TARGET", Atom(product[1]))
        assert run_program(im_program(), database) is True
        database.bind("TARGET", Atom((product[1] + 1) % 4))
        assert run_program(im_program(), database) is False
        assert im_baseline(perms, 1, product[1])

    def test_identity_permutations(self):
        perms = [list(range(5)) for _ in range(3)]
        assert [run_iterated_product(perms, i) for i in range(5)] == list(range(5))

    def test_program_is_basrl(self):
        perms = random_permutations(2, 3, seed=1)
        types = database_types(im_database(perms, 0))
        program = im_program()
        from repro.core import Atom

        types["TARGET"] = types["START"]
        assert BASRL.is_member(program, types)


class TestPowersetAndLists:
    @pytest.mark.parametrize("size", [0, 1, 2, 3, 4, 5])
    def test_powerset_matches_baseline(self, size):
        result = run_program(powerset_program(), powerset_database(size))
        assert value_to_python(result) == powerset_baseline(range(size))
        assert len(result) == 2 ** size

    def test_powerset_is_not_in_srl(self):
        types = database_types(powerset_database(3))
        assert not SRL.is_member(powerset_program(), types)

    @pytest.mark.parametrize("size", [0, 1, 3, 5])
    def test_doubling_list_length(self, size):
        result = run_program(doubling_list_program(), powerset_database(size))
        assert len(result) == 2 ** size

    def test_doubling_list_is_not_in_srl(self):
        types = database_types(powerset_database(2))
        assert not SRL.is_member(doubling_list_program(), types)


class TestEven:
    @pytest.mark.parametrize("size", range(8))
    def test_all_three_routes_agree(self, size):
        baseline = even_baseline(range(size))
        assert run_program(even_program(), even_database(size)) == baseline
        assert even_via_counting(range(size)) == baseline

    def test_even_program_is_basrl_and_order_independent(self):
        types = database_types(even_database(5))
        assert BASRL.is_member(even_program(), types)
        report = probe_order_independence(even_program(), even_database(6), trials=10)
        assert report.independent


class TestCompanyQueries:
    @pytest.fixture
    def company(self):
        data = build_company_data(num_employees=10, num_departments=3, seed=4)
        return data, company_database(data)

    def test_selection_projection(self, company):
        data, database = company
        for department in data.departments:
            result = run_program(employees_in_department_program(department), database)
            assert value_to_python(result) == data.employees_in(department)

    def test_universal_quantification(self, company):
        data, database = company
        result = run_program(departments_fully_senior_program(), database)
        assert value_to_python(result) == data.fully_senior_departments()

    def test_join(self, company):
        data, database = company
        result = run_program(colleague_pairs_program(), database)
        assert value_to_python(result) == data.colleague_pairs()

    def test_relational_queries_are_certified_order_independent(self, company):
        _, database = company
        for program in (employees_in_department_program(0), colleague_pairs_program()):
            assert certify_order_independence(program).certified

    def test_first_employee_query_is_order_dependent(self, company):
        _, database = company
        program = first_employee_is_senior_program()
        assert not certify_order_independence(program).certified
        report = probe_order_independence(program, database, trials=40)
        # The seniority of "whoever comes first" genuinely depends on the
        # order for this data set.
        assert not report.independent
