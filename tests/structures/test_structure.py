"""Tests for vocabularies, structures and the SRL database encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    from_database,
    graph_structure,
    path_graph,
)
from repro.structures.encoding import (
    decode_relation,
    encode_relation,
    encode_structure,
    index_to_tuple,
    structure_bit_length,
    tuple_to_index,
)


class TestVocabulary:
    def test_of_and_arity(self):
        vocabulary = Vocabulary.of(E=2, A=1)
        assert vocabulary.arity("E") == 2
        assert vocabulary.arity("A") == 1
        assert "E" in vocabulary and "Q" not in vocabulary

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            Vocabulary.of(E=2).arity("R")

    def test_extended(self):
        extended = GRAPH_VOCABULARY.extended(A=1)
        assert set(extended.names()) == {"E", "A"}


class TestStructure:
    def test_relations_are_normalised(self):
        s = graph_structure(3, [(0, 1), (1, 2)])
        assert s.holds("E", 0, 1)
        assert not s.holds("E", 1, 0)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Structure(GRAPH_VOCABULARY, 3, {"E": frozenset({(0, 1, 2)})})

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            graph_structure(2, [(0, 5)])

    def test_with_relation_adds_new_symbol(self):
        s = graph_structure(3, [(0, 1)]).with_relation("A", [(2,)], arity=1)
        assert s.holds("A", 2)
        assert s.vocabulary.arity("A") == 1

    def test_restrict(self):
        s = graph_structure(3, [(0, 1)]).with_relation("A", [(1,)], arity=1)
        reduct = s.restrict(["E"])
        assert set(reduct.vocabulary.names()) == {"E"}

    def test_isomorphism_check(self):
        s = graph_structure(3, [(0, 1), (1, 2)])
        t = graph_structure(3, [(2, 1), (1, 0)])
        assert s.is_isomorphic_by(t, [2, 1, 0])
        assert not s.is_isomorphic_by(t, [0, 1, 2])

    def test_database_roundtrip(self):
        s = path_graph(5).with_relation("A", [(0,), (3,)], arity=1)
        assert from_database(s.to_database()) == s

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=20))
    def test_random_roundtrip(self, size, seed):
        import random

        rng = random.Random(seed)
        edges = [(rng.randrange(size), rng.randrange(size)) for _ in range(size)]
        s = graph_structure(size, edges)
        assert from_database(s.to_database()) == s


class TestEncoding:
    def test_tuple_index_roundtrip(self):
        assert tuple_to_index((1, 2), 3) == 5
        assert index_to_tuple(5, 2, 3) == (1, 2)

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=1, max_value=3),
           st.data())
    def test_index_roundtrip_random(self, size, arity, data):
        row = tuple(data.draw(st.integers(min_value=0, max_value=size - 1))
                    for _ in range(arity))
        assert index_to_tuple(tuple_to_index(row, size), arity, size) == row

    def test_encode_decode_relation(self):
        rows = {(0, 1), (2, 2)}
        bits = encode_relation(rows, 2, 3)
        assert len(bits) == 9
        assert decode_relation(bits, 2, 3) == frozenset(rows)

    def test_bit_positions_follow_definition_3_1(self):
        # R(x, y) is bit number n*x + y.
        bits = encode_relation({(1, 2)}, 2, 3)
        assert bits[3 * 1 + 2] == 1
        assert sum(bits) == 1

    def test_encode_structure_and_length(self):
        s = path_graph(3).with_relation("A", [(1,)], arity=1)
        encoded = encode_structure(s)
        assert len(encoded["E"]) == 9
        assert len(encoded["A"]) == 3
        assert structure_bit_length(s.vocabulary, 3) == 12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            encode_relation({(0, 1, 2)}, 2, 3)
        with pytest.raises(ValueError):
            decode_relation([0, 1], 2, 3)
        with pytest.raises(ValueError):
            tuple_to_index((5,), 3)


class TestMalformedInputs:
    """Typed rejection of malformed structure inputs (PR 6): every bad
    shape surfaces as :class:`InvalidDatabaseError` (or
    :class:`SRLNameError` for unknown names) with a path-qualified
    message, never a silent drop or a raw ``AttributeError``."""

    def _db(self, **bindings):
        from repro.core import Database
        return Database(bindings)

    def test_unknown_relation_name_is_a_typed_error(self):
        from repro.core.errors import SRLNameError

        structure = path_graph(3)
        with pytest.raises(SRLNameError, match="unknown relation 'NOPE'"):
            structure.relation("NOPE")
        # The message names what *is* available.
        with pytest.raises(SRLNameError, match="E"):
            structure.relation("NOPE")

    def test_non_set_relation_value(self):
        from repro.core import Atom
        from repro.core.errors import InvalidDatabaseError

        with pytest.raises(InvalidDatabaseError, match="R: a relation"):
            from_database(self._db(R=Atom(1)))

    def test_non_atom_tuple_component_is_rejected_not_dropped(self):
        from repro.core import Atom, make_set, make_tuple
        from repro.core.errors import InvalidDatabaseError

        bad = make_set(make_tuple(Atom(0), make_set(Atom(1))))
        with pytest.raises(InvalidDatabaseError, match=r"R\[0\]\[1\]"):
            from_database(self._db(R=bad))

    def test_non_fact_element(self):
        from repro.core import make_list, make_set
        from repro.core.errors import InvalidDatabaseError

        with pytest.raises(InvalidDatabaseError, match=r"R\[0\]: a fact"):
            from_database(self._db(R=make_set(make_list())))

    def test_mixed_arity_relation(self):
        from repro.core import Atom, make_set, make_tuple
        from repro.core.errors import InvalidDatabaseError

        bad = make_set(make_tuple(Atom(0), Atom(1)), Atom(2))
        with pytest.raises(InvalidDatabaseError, match="arity"):
            from_database(self._db(R=bad))

    def test_non_set_domain(self):
        from repro.core import Atom
        from repro.core.errors import InvalidDatabaseError

        with pytest.raises(InvalidDatabaseError, match="D: the domain"):
            from_database(self._db(D=Atom(3)))

    def test_errors_are_srl_runtime_errors(self):
        from repro.core.errors import InvalidDatabaseError, SRLRuntimeError

        assert issubclass(InvalidDatabaseError, SRLRuntimeError)
