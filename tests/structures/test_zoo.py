"""The structure-generator zoo: determinism, shape invariants, and
stream/structure agreement (P9 satellite)."""

from __future__ import annotations

import pytest

from repro.structures import Structure
from repro.structures.zoo import (
    ZOO,
    clustered_edges,
    clustered_graph,
    dense_edges,
    grid_edges,
    grid_graph,
    layered_edges,
    layered_dag,
    sparse_edges,
    sparse_graph,
    tournament_edges,
)


def test_every_family_is_deterministic_per_seed():
    for name, family in ZOO.items():
        first, size = family()
        second, again = family()
        assert size == again
        assert list(first) == list(second), name


def test_seed_changes_the_random_families():
    assert list(sparse_edges(30, seed=0)) != list(sparse_edges(30, seed=1))
    assert list(clustered_edges(4, seed=0)) != list(clustered_edges(4, seed=1))


def test_streams_agree_with_structure_wrappers():
    structure = sparse_graph(20, degree=2, seed=7)
    assert structure.relations["E"] == frozenset(
        sparse_edges(20, degree=2, seed=7))
    assert structure.size == 20
    grid = grid_graph(3, 4)
    assert grid.relations["E"] == frozenset(grid_edges(3, 4))
    assert grid.size == 12


def test_layered_dag_edges_only_cross_adjacent_layers():
    layers, width = 5, 4
    for source, target in layered_edges(layers, width, degree=2, seed=3):
        assert target // width == source // width + 1
    dag = layered_dag(layers, width, degree=2, seed=3)
    assert dag.size == layers * width


def test_sparse_graph_has_fixed_out_degree_and_no_self_loops():
    edges = list(sparse_edges(25, degree=3, seed=1))
    assert all(u != v for u, v in edges)
    out = {}
    for u, _ in edges:
        out[u] = out.get(u, 0) + 1
    assert set(out.values()) == {3}


def test_tournament_covers_every_pair_exactly_once():
    size = 12
    edges = list(tournament_edges(size, seed=4))
    assert len(edges) == size * (size - 1) // 2
    seen = {frozenset(edge) for edge in edges}
    assert len(seen) == len(edges)


def test_grid_has_the_right_edge_count():
    rows, cols = 4, 6
    assert len(list(grid_edges(rows, cols))) == \
        rows * (cols - 1) + (rows - 1) * cols


def test_dense_probability_extremes():
    assert list(dense_edges(6, probability=0.0)) == []
    full = list(dense_edges(6, probability=1.0))
    assert len(full) == 6 * 5


def test_clustered_edges_stay_in_cluster_or_bridge():
    clusters, cluster_size = 6, 5
    bridges = []
    for u, v in clustered_edges(clusters, cluster_size, intra=10, seed=2):
        if u // cluster_size == v // cluster_size:
            continue
        bridges.append((u, v))
    assert bridges == [(c * cluster_size, (c + 1) * cluster_size)
                       for c in range(clusters - 1)]
    graph = clustered_graph(clusters, cluster_size, intra=10, seed=2)
    assert graph.size == clusters * cluster_size
    assert isinstance(graph, Structure)


def test_zoo_defaults_are_modest():
    for name, family in ZOO.items():
        stream, size = family()
        edges = sum(1 for _ in stream)
        assert 0 < edges < 200_000, name
        assert 0 < size <= 25_000, name


@pytest.mark.parametrize("name", sorted(ZOO))
def test_zoo_streams_fit_their_declared_universe(name):
    stream, size = ZOO[name]()
    for u, v in stream:
        assert 0 <= u < size and 0 <= v < size
