"""Tests for the graph generators, WL refinement and the CFI pairs."""

from __future__ import annotations

import pytest

from repro.structures import (
    ColoredGraph,
    and_or_tree,
    are_isomorphic,
    cfi_pair,
    color_refinement,
    colored_graph_to_structure,
    cycle_base,
    cycle_graph,
    cycle_pair,
    find_isomorphism,
    functional_graph,
    layered_graph,
    path_graph,
    permutations_structure,
    random_alternating_graph,
    random_graph,
    random_permutations,
    wl1_indistinguishable,
    wl2_indistinguishable,
)


class TestGenerators:
    def test_path_and_cycle(self):
        assert len(path_graph(5).relation("E")) == 4
        assert len(cycle_graph(5).relation("E")) == 5

    def test_functional_graph_has_out_degree_one(self):
        g = functional_graph(10, seed=3)
        sources = [u for u, _ in g.relation("E")]
        assert sorted(sources) == list(range(10))

    def test_random_graph_is_deterministic_in_seed(self):
        assert random_graph(8, seed=5) == random_graph(8, seed=5)
        assert random_graph(8, seed=5) != random_graph(8, seed=6)

    def test_layered_graph_only_links_adjacent_layers(self):
        g = layered_graph(3, 2, seed=1, edge_probability=1.0)
        for u, v in g.relation("E"):
            assert v // 2 == u // 2 + 1

    def test_alternating_graph_marks_universal_vertices(self):
        g = random_alternating_graph(8, seed=2)
        for (v,) in g.relation("A"):
            assert 0 <= v < 8

    def test_and_or_tree_shape(self):
        g = and_or_tree(3)
        assert g.size == 15
        assert len(g.relation("E")) == 14

    def test_permutation_structure_validates(self):
        with pytest.raises(ValueError):
            permutations_structure([[0, 0]])
        s = permutations_structure(random_permutations(3, 4, seed=1))
        assert len(s.relation("P")) == 12


class TestColorRefinement:
    def test_regular_graph_collapses_to_one_color(self):
        graph = ColoredGraph.from_edges(6, [(i, (i + 1) % 6) for i in range(6)])
        assert len(set(color_refinement(graph))) == 1

    def test_path_end_vertices_get_distinct_colors(self):
        graph = ColoredGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        colors = color_refinement(graph)
        assert colors[0] == colors[3]
        assert colors[0] != colors[1]

    def test_initial_colors_are_respected(self):
        graph = ColoredGraph.from_edges(2, [], colors=["red", "blue"])
        colors = color_refinement(graph)
        assert colors[0] != colors[1]


class TestWLIndistinguishability:
    def test_cycle_pair_fools_1wl(self):
        pair = cycle_pair(4)
        assert wl1_indistinguishable(pair.untwisted, pair.twisted)

    def test_cycle_pair_is_caught_by_2wl(self):
        pair = cycle_pair(3)
        assert not wl2_indistinguishable(pair.untwisted, pair.twisted)

    def test_different_sizes_are_distinguished(self):
        a = ColoredGraph.from_edges(3, [(0, 1)])
        b = ColoredGraph.from_edges(4, [(0, 1)])
        assert not wl1_indistinguishable(a, b)

    def test_isomorphic_graphs_are_indistinguishable(self):
        a = ColoredGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        b = ColoredGraph.from_edges(4, [(3, 2), (2, 1), (1, 0)])
        assert wl1_indistinguishable(a, b)
        assert wl2_indistinguishable(a, b)


class TestIsomorphismSearch:
    def test_finds_mapping_for_isomorphic_graphs(self):
        a = ColoredGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        b = ColoredGraph.from_edges(4, [(1, 0), (0, 3), (3, 2)])
        mapping = find_isomorphism(a, b)
        assert mapping is not None
        for u in range(4):
            for v in a.adjacency[u]:
                assert mapping[v] in b.adjacency[mapping[u]]

    def test_respects_colors(self):
        a = ColoredGraph.from_edges(2, [(0, 1)], colors=["x", "y"])
        b = ColoredGraph.from_edges(2, [(0, 1)], colors=["y", "y"])
        assert not are_isomorphic(a, b)

    def test_cycle_pair_is_not_isomorphic(self):
        pair = cycle_pair(3)
        assert not are_isomorphic(pair.untwisted, pair.twisted)


class TestCFI:
    def test_cfi_pair_over_a_cycle(self):
        pair = cfi_pair(cycle_base(4))
        assert pair.untwisted.size == pair.twisted.size
        assert pair.untwisted.degree_sequence() == pair.twisted.degree_sequence()

    def test_cfi_pair_is_not_isomorphic_but_fools_1wl(self):
        pair = cfi_pair(cycle_base(4))
        assert wl1_indistinguishable(pair.untwisted, pair.twisted)
        assert not are_isomorphic(pair.untwisted, pair.twisted)

    def test_k4_cfi_pair(self):
        pair = cfi_pair()  # K4 base
        assert pair.untwisted.size == 4 * 4 + 6 * 2
        assert wl1_indistinguishable(pair.untwisted, pair.twisted)
        assert not are_isomorphic(pair.untwisted, pair.twisted)

    def test_structure_view_is_symmetric(self):
        pair = cycle_pair(3)
        structure = colored_graph_to_structure(pair.untwisted)
        for u, v in structure.relation("E"):
            assert structure.holds("E", v, u)

    def test_cycle_pair_validates_length(self):
        with pytest.raises(ValueError):
            cycle_pair(2)
