"""Dense-int interning (P7): the InternTable and Structure.from_labeled."""

import pytest

from repro.structures import InternTable, Structure


class TestInternTable:
    def test_first_occurrence_rank_order(self):
        table = InternTable()
        assert table.intern("carol") == 0
        assert table.intern("alice") == 1
        assert table.intern("carol") == 0  # idempotent
        assert table.intern("bob") == 2
        assert table.labels == ("carol", "alice", "bob")

    def test_seeded_from_elements(self):
        table = InternTable(["a", "b", "c"])
        assert len(table) == 3
        assert table.rank_of("b") == 1

    def test_lookups_and_decode(self):
        table = InternTable(["x", "y"])
        assert table.label_of(0) == "x"
        assert table.decode_row((1, 0, 1)) == ("y", "x", "y")
        assert table.intern_row(("y", "z")) == (1, 2)
        assert "z" in table and "w" not in table
        with pytest.raises(KeyError):
            table.rank_of("w")

    def test_equality_and_mapping(self):
        a = InternTable(["p", "q"])
        b = InternTable(["p", "q"])
        c = InternTable(["q", "p"])
        assert a == b
        assert a != c  # same labels, different ranks
        assert a.as_mapping() == {"p": 0, "q": 1}
        assert list(a) == ["p", "q"]


class TestFromLabeled:
    def test_builds_dense_universe_and_persists_table(self):
        structure = Structure.from_labeled(
            {"E": [("alice", "bob"), ("bob", "carol")]})
        assert structure.size == 3
        assert structure.intern is not None
        assert structure.relations["E"] == {(0, 1), (1, 2)}
        assert structure.decode_row((2, 0)) == ("carol", "alice")

    def test_elements_fix_ordering_and_isolated_nodes(self):
        structure = Structure.from_labeled(
            {"E": [("b", "a")]}, elements=("a", "b", "lonely"))
        assert structure.size == 3
        assert structure.relations["E"] == {(1, 0)}
        assert structure.intern.label_of(2) == "lonely"

    def test_stats_reports_interning(self):
        labeled = Structure.from_labeled({"E": [("a", "b")]})
        stats = labeled.stats()
        assert stats["interned"] is True
        assert stats["intern_entries"] == 2
        assert stats["relations"] == {"E": 1}
        plain = Structure.from_labeled({"E": [(0, 1)]})
        # ints are labels too: still interned, ranks in first-occurrence order
        assert plain.relations["E"] == {(0, 1)}

    def test_decode_identity_without_table(self):
        from repro.structures import path_graph
        structure = path_graph(4)
        assert structure.intern is None
        assert structure.decode_row((2, 3)) == (2, 3)
        assert structure.stats()["interned"] is False
        assert structure.stats()["intern_entries"] == 4

    def test_table_rides_through_algebra(self):
        structure = Structure.from_labeled({"E": [("a", "b")]})
        extended = structure.with_relation("Mark", [(0,)], arity=1)
        assert extended.intern is structure.intern
        reduct = extended.restrict(["E"])
        assert reduct.intern is structure.intern

    def test_size_mismatch_rejected(self):
        from repro.structures import GRAPH_VOCABULARY
        with pytest.raises(ValueError, match="intern table"):
            Structure(GRAPH_VOCABULARY, 3, {"E": frozenset()},
                      intern=InternTable(["only", "two"]))
