"""The binary snapshot round-trip property suite (P9 acceptance).

The load-bearing properties:

* ``save_snapshot`` ∘ ``load_structure`` is the identity on structures —
  relations (through the lazy packed views), universe size, vocabulary,
  and the ``InternTable``'s label order all survive the file;
* ``Structure.from_edge_stream`` / ``build_snapshot`` agree with the
  eager tuple-set constructors on every input, labeled or ranked;
* the persisted degree statistics match a brute-force recount;
* every malformed-input path — bad magic, unsupported version, header
  that is not JSON, truncated payloads, non-monotone CSR offsets,
  out-of-universe targets — raises the typed
  :class:`~repro.core.errors.SnapshotError`, never a stack blow-up or a
  silently wrong structure.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidDatabaseError
from repro.structures import (
    Snapshot,
    SnapshotError,
    Structure,
    build_snapshot,
    graph_structure,
    load_snapshot,
    load_structure,
    save_snapshot,
)
from repro.structures.graphs import random_alternating_graph, random_graph
from repro.structures.snapshot import (
    MAGIC,
    _HEADER_PREFIX,
    PackedBitsetRelation,
    PackedCSRRelation,
    degree_stats_of_csr,
)
from repro.structures.vocabulary import Vocabulary

SIZES = st.integers(min_value=1, max_value=9)
SEEDS = st.integers(min_value=0, max_value=60)


def edge_lists(size: int):
    pair = st.tuples(st.integers(0, size - 1), st.integers(0, size - 1))
    return st.lists(pair, max_size=20)


# ------------------------------------------------------------- round trips


@given(SIZES, SEEDS)
@settings(max_examples=40, deadline=None)
def test_graph_snapshot_round_trips(tmp_path_factory, size, seed):
    path = tmp_path_factory.mktemp("snap") / "graph.snap"
    structure = random_graph(size, seed=seed)
    header = save_snapshot(structure, path)
    loaded = load_structure(path)
    assert loaded.size == structure.size
    assert loaded.vocabulary == structure.vocabulary
    # Both directions: the packed view's __eq__ and frozenset's.
    assert loaded.relations["E"] == structure.relations["E"]
    assert frozenset(structure.relations["E"]) == loaded.relations["E"]
    assert loaded == structure
    assert header["relations"]["E"]["rows"] == len(structure.relations["E"])


@given(SIZES, SEEDS)
@settings(max_examples=40, deadline=None)
def test_alternating_snapshot_round_trips(tmp_path_factory, size, seed):
    """Mixed arities: the binary E rides CSR, the unary A a bitset."""
    path = tmp_path_factory.mktemp("snap") / "alt.snap"
    structure = random_alternating_graph(size, seed=seed)
    save_snapshot(structure, path)
    loaded = load_structure(path)
    assert loaded == structure
    assert isinstance(loaded.relations["A"], PackedBitsetRelation)
    assert isinstance(loaded.relations["E"], PackedCSRRelation)


@given(SIZES, st.data())
@settings(max_examples=40, deadline=None)
def test_edge_stream_matches_eager_constructor(tmp_path_factory, size, data):
    edges = data.draw(edge_lists(size))
    path = tmp_path_factory.mktemp("snap") / "stream.snap"
    build_snapshot(edges, path, size=size)
    loaded = load_structure(path)
    assert loaded == graph_structure(size, edges)
    streamed = Structure.from_edge_stream(edges, size=size)
    assert streamed == loaded


def test_labeled_edge_stream_interns_in_first_occurrence_order(tmp_path):
    path = tmp_path / "labeled.snap"
    build_snapshot([("c", "a"), ("a", "b"), ("c", "b")], path)
    snapshot = load_snapshot(path)
    structure = snapshot.structure
    assert structure.intern is not None
    assert list(structure.intern.labels) == ["c", "a", "b"]
    assert structure.relations["E"] == {(0, 1), (1, 2), (0, 2)}
    assert snapshot.info()["interned"] is True


@given(SIZES, SEEDS)
@settings(max_examples=25, deadline=None)
def test_degree_stats_match_brute_force(tmp_path_factory, size, seed):
    path = tmp_path_factory.mktemp("snap") / "stats.snap"
    structure = random_graph(size, edge_probability=0.4, seed=seed)
    save_snapshot(structure, path)
    loaded = load_structure(path)
    edges = frozenset(structure.relations["E"])
    stats = loaded.degree_stats["E"]
    assert stats["rows"] == len(edges)
    assert stats["distinct_sources"] == len({u for u, _ in edges})
    assert stats["distinct_targets"] == len({v for _, v in edges})
    out_degrees = [sum(1 for u, _ in edges if u == x) for x in range(size)]
    assert stats["max_out_degree"] == (max(out_degrees) if size else 0)


def test_degree_stats_of_csr_on_empty_relation():
    assert degree_stats_of_csr([0, 0, 0], []) == {
        "rows": 0, "distinct_sources": 0, "distinct_targets": 0,
        "max_out_degree": 0,
    }


def test_derived_relations_round_trip(tmp_path):
    path = tmp_path / "derived.snap"
    structure = graph_structure(4, [(0, 1), (1, 2)])
    derived = {
        "tc": frozenset({(0, 1), (0, 2), (1, 2)}),
        "flag": frozenset({()}),
        "triple": frozenset({(0, 1, 2), (2, 1, 0)}),
    }
    save_snapshot(structure, path, derived=derived)
    with load_snapshot(path) as snapshot:
        assert {name: rel.rows() for name, rel in snapshot.derived.items()} \
            == derived
        info = snapshot.info()
        assert info["derived"]["flag"]["rows"] == 1
        assert info["derived"]["triple"]["arity"] == 3


def test_empty_and_full_unit_relations(tmp_path):
    path = tmp_path / "unit.snap"
    structure = graph_structure(3, [])
    save_snapshot(structure, path, derived={"yes": frozenset({()}),
                                            "no": frozenset()})
    snapshot = load_snapshot(path)
    assert snapshot.derived["yes"].rows() == {()}
    assert snapshot.derived["no"].rows() == frozenset()
    assert not snapshot.derived["no"]


def test_packed_views_behave_like_frozensets(tmp_path):
    path = tmp_path / "views.snap"
    save_snapshot(random_alternating_graph(5, seed=3), path)
    loaded = load_structure(path)
    edges, atoms = loaded.relations["E"], loaded.relations["A"]
    rows = frozenset(edges)
    assert len(edges) == len(rows)
    assert all(row in edges for row in rows)
    assert (5, 5) not in edges and "x" not in edges
    assert edges | {(9, 9)} == rows | {(9, 9)}
    assert edges - rows == frozenset()
    assert {row[0] for row in atoms} == {value for (value,) in atoms.rows()}
    assert hash(edges) == hash(rows)


# ------------------------------------------------------------- error paths


def _valid_snapshot_bytes(tmp_path) -> bytes:
    path = tmp_path / "valid.snap"
    save_snapshot(random_graph(6, edge_probability=0.5, seed=1), path)
    return path.read_bytes()


def _expect_error(tmp_path, raw: bytes, fragment: str) -> None:
    path = tmp_path / "corrupt.snap"
    path.write_bytes(raw)
    with pytest.raises(SnapshotError, match=fragment):
        load_structure(path)


def test_snapshot_error_is_an_input_error():
    assert issubclass(SnapshotError, InvalidDatabaseError)


def test_missing_file_raises_snapshot_error(tmp_path):
    with pytest.raises(SnapshotError, match="cannot open"):
        load_snapshot(tmp_path / "nowhere.snap")


def test_bad_magic(tmp_path):
    raw = _valid_snapshot_bytes(tmp_path)
    _expect_error(tmp_path, b"XXXX" + raw[4:], "bad magic")


def test_unsupported_version(tmp_path):
    raw = _valid_snapshot_bytes(tmp_path)
    corrupted = raw[:4] + (99).to_bytes(2, "little") + raw[6:]
    _expect_error(tmp_path, corrupted, "unsupported snapshot version")


def test_truncated_prefix(tmp_path):
    _expect_error(tmp_path, MAGIC + b"\x01\x00", "too short")


def test_header_length_past_eof(tmp_path):
    raw = _valid_snapshot_bytes(tmp_path)
    corrupted = raw[:8] + (2 ** 32).to_bytes(8, "little") + raw[16:]
    _expect_error(tmp_path, corrupted, "runs past the end")


def test_header_not_json(tmp_path):
    body = b"not json!"
    raw = (MAGIC + (1).to_bytes(2, "little") + b"\0\0"
           + len(body).to_bytes(8, "little") + body)
    _expect_error(tmp_path, raw, "not valid JSON")


def test_header_not_an_object(tmp_path):
    body = json.dumps([1, 2, 3]).encode()
    raw = (MAGIC + (1).to_bytes(2, "little") + b"\0\0"
           + len(body).to_bytes(8, "little") + body)
    _expect_error(tmp_path, raw, "must be a JSON object")


def test_truncated_payload(tmp_path):
    raw = _valid_snapshot_bytes(tmp_path)
    header_length = int.from_bytes(raw[8:16], "little")
    base = _HEADER_PREFIX + header_length
    base += (-base) % 8
    _expect_error(tmp_path, raw[:base + 4], "runs past the end")


def _payload_base(raw: bytes) -> int:
    header_length = int.from_bytes(raw[8:16], "little")
    base = _HEADER_PREFIX + header_length
    return base + (-base) % 8


def _strip_checksum(raw: bytes) -> bytes:
    """Remove the header's checksum entry (padding to keep every payload
    offset identical) — the shape of a pre-P10 snapshot, so the decoder's
    own structural validation is what the corruption tests exercise."""
    header_length = int.from_bytes(raw[8:16], "little")
    header = json.loads(raw[_HEADER_PREFIX:_HEADER_PREFIX + header_length])
    header.pop("checksum", None)
    body = json.dumps(header, separators=(",", ":")).encode()
    assert len(body) <= header_length
    body += b" " * (header_length - len(body))
    out = bytearray(raw)
    out[_HEADER_PREFIX:_HEADER_PREFIX + header_length] = body
    return bytes(out)


def test_non_monotone_csr_offsets(tmp_path):
    raw = bytearray(_strip_checksum(_valid_snapshot_bytes(tmp_path)))
    base = _payload_base(bytes(raw))
    # The sole relation's CSR offsets start at the payload base; breaking
    # offsets[0] != 0 must be caught, not walked.
    raw[base:base + 8] = (7).to_bytes(8, "little")
    _expect_error(tmp_path, bytes(raw), "not monotone")


def test_out_of_universe_targets(tmp_path):
    raw = bytearray(_strip_checksum(_valid_snapshot_bytes(tmp_path)))
    base = _payload_base(bytes(raw))
    header = json.loads(
        raw[_HEADER_PREFIX:_HEADER_PREFIX
            + int.from_bytes(raw[8:16], "little")])
    entry = header["relations"]["E"]
    assert entry["rows"] > 0, "corruption target needs at least one edge"
    targets_at = base + entry["offset"] + 8 * (header["size"] + 1)
    raw[targets_at:targets_at + 4] = (2 ** 20).to_bytes(4, "little")
    _expect_error(tmp_path, bytes(raw), "outside the universe")


def test_row_count_disagreeing_with_bitset(tmp_path):
    path = tmp_path / "alt.snap"
    save_snapshot(random_alternating_graph(6, seed=2), path)
    raw = bytearray(path.read_bytes())
    header_length = int.from_bytes(raw[8:16], "little")
    header = json.loads(raw[_HEADER_PREFIX:_HEADER_PREFIX + header_length])
    header["relations"]["A"]["rows"] += 1
    body = json.dumps(header, separators=(",", ":")).encode()
    # Keep the header length identical so the payload offsets survive.
    body += b" " * (header_length - len(body))
    raw[8:16] = len(body).to_bytes(8, "little")
    raw[_HEADER_PREFIX:_HEADER_PREFIX + header_length] = body
    _expect_error(tmp_path, bytes(raw), "header says")


def test_vocabulary_without_section(tmp_path):
    body = json.dumps({
        "size": 2, "vocabulary": {"E": 2}, "labels": None,
        "relations": {}, "derived": {},
    }, separators=(",", ":")).encode()
    raw = (MAGIC + (1).to_bytes(2, "little") + b"\0\0"
           + len(body).to_bytes(8, "little") + body)
    _expect_error(tmp_path, raw, "no section")


def test_label_count_mismatch(tmp_path):
    body = json.dumps({
        "size": 3, "vocabulary": {}, "labels": ["a"],
        "relations": {}, "derived": {},
    }, separators=(",", ":")).encode()
    raw = (MAGIC + (1).to_bytes(2, "little") + b"\0\0"
           + len(body).to_bytes(8, "little") + body)
    _expect_error(tmp_path, raw, "intern labels")


def test_unserializable_labels_fail_at_save_time(tmp_path):
    structure = Structure.from_edge_stream(
        [(frozenset({1}), frozenset({2}))])
    with pytest.raises(SnapshotError, match="JSON-serializable"):
        save_snapshot(structure, tmp_path / "bad.snap")


def test_arity_vocabulary_disagreement(tmp_path):
    path = tmp_path / "mismatch.snap"
    save_snapshot(graph_structure(3, [(0, 1)]), path)
    raw = bytearray(path.read_bytes())
    header_length = int.from_bytes(raw[8:16], "little")
    header = json.loads(raw[_HEADER_PREFIX:_HEADER_PREFIX + header_length])
    header["vocabulary"]["E"] = 1
    body = json.dumps(header, separators=(",", ":")).encode()
    body += b" " * max(0, header_length - len(body))
    raw[8:16] = len(body).to_bytes(8, "little")
    raw[_HEADER_PREFIX:_HEADER_PREFIX + header_length] = body
    _expect_error(tmp_path, bytes(raw), "disagrees with the vocabulary")


def test_higher_arity_relations_use_tuple_encoding(tmp_path):
    path = tmp_path / "triples.snap"
    rows = frozenset({(0, 1, 2), (3, 2, 1), (0, 0, 0)})
    structure = Structure(Vocabulary.of(T=3), 4, {"T": rows})
    header = save_snapshot(structure, path)
    assert header["relations"]["T"]["encoding"] == "tuples"
    assert load_structure(path) == structure


def test_snapshot_info_reports_shape(tmp_path):
    path = tmp_path / "info.snap"
    save_snapshot(random_alternating_graph(7, seed=5), path)
    with Snapshot(path) as snapshot:
        info = snapshot.info()
        assert info["size"] == 7
        assert info["vocabulary"] == {"A": 1, "E": 2}
        assert info["relations"]["E"]["encoding"] == "csr"
        assert info["relations"]["A"]["encoding"] == "bitset"
        assert "max_out_degree" in info["relations"]["E"]["stats"]
        assert info["file_bytes"] == path.stat().st_size


# --------------------------------------------------- atomic writes + CRC32


def test_checksum_round_trip(tmp_path):
    path = tmp_path / "crc.snap"
    structure = random_alternating_graph(6, seed=9)
    header = save_snapshot(structure, path)
    checksum = header["checksum"]
    assert checksum["algorithm"] == "crc32"
    assert checksum["payload_bytes"] > 0
    assert load_structure(path) == structure
    # The persisted header carries the same checksum entry.
    assert load_snapshot(path).header["checksum"] == checksum


def test_payload_corruption_fails_the_checksum(tmp_path):
    raw = bytearray(_valid_snapshot_bytes(tmp_path))
    raw[-1] ^= 0xFF  # flip one payload bit
    _expect_error(tmp_path, bytes(raw), "checksum mismatch")


def test_malformed_checksum_entry_is_rejected(tmp_path):
    raw = bytearray(_valid_snapshot_bytes(tmp_path))
    header_length = int.from_bytes(raw[8:16], "little")
    header = json.loads(raw[_HEADER_PREFIX:_HEADER_PREFIX + header_length])
    header["checksum"] = {"algorithm": "crc32"}  # value/span missing
    body = json.dumps(header, separators=(",", ":")).encode()
    assert len(body) <= header_length
    body += b" " * (header_length - len(body))
    raw[_HEADER_PREFIX:_HEADER_PREFIX + header_length] = body
    _expect_error(tmp_path, bytes(raw), "malformed checksum")


def test_checksum_free_legacy_files_still_load(tmp_path):
    path = tmp_path / "legacy.snap"
    structure = random_alternating_graph(5, seed=4)
    save_snapshot(structure, path)
    path.write_bytes(_strip_checksum(path.read_bytes()))
    assert load_structure(path) == structure


def test_save_is_atomic_over_an_existing_snapshot(tmp_path, monkeypatch):
    """A failing save must leave the previous snapshot intact and no temp
    litter — the write goes to a sibling temp file and only a completed,
    fsynced file is os.replace'd over the target."""
    import os as _os

    from repro.structures import snapshot as snapshot_module

    path = tmp_path / "atomic.snap"
    original = random_alternating_graph(5, seed=1)
    save_snapshot(original, path)
    before = path.read_bytes()

    def exploding_fsync(fd):
        raise OSError("disk full (injected)")

    monkeypatch.setattr(snapshot_module.os, "fsync", exploding_fsync)
    with pytest.raises(OSError, match="disk full"):
        save_snapshot(random_alternating_graph(6, seed=2), path)
    monkeypatch.undo()
    assert path.read_bytes() == before, "failed save tore the old snapshot"
    assert [name for name in _os.listdir(tmp_path) if ".tmp" in name] == []
    assert load_structure(path) == original


def test_save_leaves_no_temp_files_on_success(tmp_path):
    path = tmp_path / "clean.snap"
    save_snapshot(random_alternating_graph(4, seed=0), path)
    assert sorted(p.name for p in tmp_path.iterdir()) == ["clean.snap"]
