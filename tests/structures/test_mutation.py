"""The mutation-API property suite (P8 acceptance): single-fact
``Structure.insert`` / ``Structure.delete``, batched ``Structure.apply``,
and the maintained-memo round trips behind them.

The load-bearing properties:

* ``insert ∘ delete`` (of a fact not previously present) round-trips the
  structure to its original value — relations, universe size, and
  ``InternTable`` statistics included;
* a batched ``apply`` equals the sequential composition of its changes,
  and the *net* changeset it returns replays to the same structure;
* a :class:`~repro.logic.eval.ModelChecker`'s memoized defined relations
  round-trip with the structure (insert ∘ delete leaves the memo rows
  exactly where they started, via two incremental maintenance passes).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SRLNameError
from repro.structures import Change, Changeset, Structure, path_graph
from repro.structures.graphs import random_alternating_graph


def copy_structure(structure: Structure) -> Structure:
    return Structure(structure.vocabulary, structure.size,
                     dict(structure.relations), intern=structure.intern)


SIZES = st.integers(min_value=2, max_value=6)


def changes(size: int):
    row2 = st.tuples(st.integers(0, size - 1), st.integers(0, size - 1))
    row1 = st.tuples(st.integers(0, size - 1))
    return st.lists(
        st.one_of(
            st.tuples(st.sampled_from(["insert", "delete"]),
                      st.just("E"), row2),
            st.tuples(st.sampled_from(["insert", "delete"]),
                      st.just("A"), row1),
        ),
        min_size=1, max_size=6,
    )


@st.composite
def structure_and_changes(draw):
    size = draw(SIZES)
    seed = draw(st.integers(0, 50))
    structure = random_alternating_graph(size, seed=seed)
    return structure, draw(changes(size))


# ----------------------------------------------------------- round trips


@given(structure_and_changes())
@settings(max_examples=60, deadline=None)
def test_insert_then_delete_round_trips(case):
    structure, ops = case
    original = copy_structure(structure)
    original_stats = structure.stats()
    for _, name, row in ops:
        present = row in structure.relations[name]
        structure.insert(name, row)
        assert row in structure.relations[name]
        if not present:
            structure.delete(name, row)
        assert structure == original
        assert structure.stats() == original_stats


@given(structure_and_changes())
@settings(max_examples=60, deadline=None)
def test_batched_apply_equals_sequential_composition(case):
    structure, ops = case
    batched = copy_structure(structure)
    sequential = copy_structure(structure)
    changeset = Changeset(tuple(Change(op, name, row)
                                for op, name, row in ops))
    batched.apply(changeset)
    for op, name, row in ops:
        if op == "insert":
            sequential.insert(name, row)
        else:
            sequential.delete(name, row)
    assert batched == sequential


@given(structure_and_changes())
@settings(max_examples=60, deadline=None)
def test_net_changeset_is_disjoint_and_replays(case):
    structure, ops = case
    before = copy_structure(structure)
    net = structure.apply(Changeset(tuple(Change(op, name, row)
                                          for op, name, row in ops)))
    inserted, deleted = net.by_op()
    for name in set(inserted) | set(deleted):
        assert not inserted.get(name, frozenset()) & \
            deleted.get(name, frozenset())
        # Net means net: every reported change actually changed membership.
        assert inserted.get(name, frozenset()) <= structure.relations[name]
        assert not deleted.get(name, frozenset()) & structure.relations[name]
        assert deleted.get(name, frozenset()) <= before.relations[name]
    replayed = copy_structure(before)
    replayed.apply(net)
    assert replayed == structure


@given(structure_and_changes())
@settings(max_examples=30, deadline=None)
def test_memoized_relations_round_trip_under_maintenance(case):
    """insert ∘ delete through ``ModelChecker.apply_update`` returns every
    memoized defined relation to its original rows — two maintenance
    passes, no recompute needed to land back exactly."""
    from repro.logic.eval import ModelChecker
    from repro.logic.queries import CANONICAL_QUERIES

    structure, ops = case
    checker = ModelChecker(structure, backend="plan")
    formulas = [CANONICAL_QUERIES[name].formula()
                for name in ("tc", "half-out")]
    baseline = [checker.defined_relation(f) for f in formulas]
    original = copy_structure(structure)
    original_stats = structure.stats()
    for _, name, row in ops:
        if row in structure.relations[name]:
            continue
        checker.apply_update(Changeset.inserting(name, row))
        checker.apply_update(Changeset.deleting(name, row))
        assert structure == original
        assert structure.stats() == original_stats
        assert [checker.defined_relation(f) for f in formulas] == baseline


# --------------------------------------------------------------- label rows


def test_insert_new_label_grows_the_universe_and_intern_table():
    base = Structure.from_labeled(
        {"E": [("a", "b"), ("b", "c")]}, ["a", "b", "c"],
        vocabulary=path_graph(3).vocabulary)
    assert base.size == 3
    net = base.apply(Changeset.inserting("E", ("c", "d")))
    assert base.size == 4
    assert base.intern.rank_of("d") == 3
    assert (2, 3) in base.relations["E"]
    assert len(net) == 1
    # Deleting the fact shrinks the relation but never the universe: the
    # intern table is append-only (ranks are stable identities).
    base.apply(Changeset.deleting("E", ("c", "d")))
    assert (2, 3) not in base.relations["E"]
    assert base.size == 4


def test_delete_with_unknown_label_is_an_error():
    base = Structure.from_labeled(
        {"E": [("a", "b")]}, ["a", "b"],
        vocabulary=path_graph(2).vocabulary)
    with pytest.raises(ValueError):
        base.delete("E", ("a", "zzz"))


def test_unknown_relation_and_bad_rows_are_errors():
    structure = path_graph(3)
    with pytest.raises(SRLNameError):
        structure.insert("NOPE", (0, 1))
    with pytest.raises(ValueError):
        structure.insert("E", (0, 7))      # rank outside the universe
    with pytest.raises(ValueError):
        structure.insert("E", (0,))        # arity mismatch
    with pytest.raises(ValueError):
        Change("frobnicate", "E", (0, 1))  # unknown op


def test_insert_delete_report_whether_membership_changed():
    structure = path_graph(3)
    assert structure.insert("E", (2, 0))
    assert not structure.insert("E", (2, 0))
    assert structure.delete("E", (2, 0))
    assert not structure.delete("E", (2, 0))


def test_changeset_json_round_trip():
    changeset = Changeset.from_json(
        [{"op": "+", "relation": "E", "row": [0, 1]},
         ["delete", "A", [2]]])
    assert [c.op for c in changeset] == ["insert", "delete"]
    assert Changeset.from_json(changeset.to_json()) == changeset
    with pytest.raises(ValueError):
        Changeset.from_json([{"op": "insert", "relation": "E"}])
    with pytest.raises(ValueError):
        Changeset.from_json([["insert", "E", "not-a-row"]])
