"""Worker-core tests: the in-process :class:`Worker` behind both the
pipe loop and the server's inline mode.

The contract: every request gets a reply carrying its ``id``; failures
are *typed* envelopes (``kind`` ∈ input/resource/internal) mirroring the
CLI exit-code taxonomy; plans are cached per stats signature and
invalidated when a structure is reloaded or its statistics change.
"""

from __future__ import annotations

import pytest

from repro.core.governor import CancelToken
from repro.service.worker import Worker, error_envelope, stats_signature
from repro.structures import graph_structure

pytestmark = pytest.mark.usefixtures("snapshot_path")


@pytest.fixture
def worker(snapshot_path):
    worker = Worker()
    reply = worker.handle({"op": "load", "id": 1, "name": "g",
                           "path": str(snapshot_path)})
    assert reply["ok"], reply
    return worker


# ------------------------------------------------------------------ ops


def test_ping(worker):
    reply = worker.handle({"op": "ping", "id": 41})
    assert reply["ok"] and reply["id"] == 41
    assert reply["structures"] == ["g"]


def test_unknown_op_is_a_typed_input_error(worker):
    reply = worker.handle({"op": "frobnicate", "id": 2})
    assert not reply["ok"] and reply["id"] == 2
    assert reply["error"]["kind"] == "input"
    assert "frobnicate" in reply["error"]["message"]


def test_shutdown_sets_the_stop_flag(worker):
    assert worker.handle({"op": "shutdown", "id": 3})["ok"]
    assert worker.stopped


def test_load_json_database(json_path):
    worker = Worker()
    reply = worker.handle({"op": "load", "name": "j", "path": str(json_path)})
    assert reply["ok"] and reply["size"] >= 6


# ---------------------------------------------------------------- queries


@pytest.mark.parametrize("backend", ["tuple", "plan", "columnar"])
def test_query_matches_the_oracle(worker, oracle, backend):
    for name in ("tc", "apath"):
        reply = worker.handle({"op": "query", "structure": "g",
                               "query": name, "backend": backend})
        assert reply["ok"], reply
        assert reply["rows"] == oracle(name)
        assert reply["backend"] == backend


def test_second_query_hits_the_plan_cache(worker):
    first = worker.handle({"op": "query", "structure": "g", "query": "tc"})
    second = worker.handle({"op": "query", "structure": "g", "query": "tc"})
    assert not first["cached"] and second["cached"]
    assert first["rows"] == second["rows"]
    assert second["stats"]["plan_cache_hits"] == 1


def test_unknown_query_is_input(worker):
    reply = worker.handle({"op": "query", "structure": "g", "query": "nope"})
    assert reply["error"]["kind"] == "input"
    assert "nope" in reply["error"]["message"]


def test_unknown_structure_is_input(worker):
    reply = worker.handle({"op": "query", "structure": "missing",
                           "query": "tc"})
    assert reply["error"]["kind"] == "input"
    assert "missing" in reply["error"]["message"]


def test_unknown_backend_is_input(worker):
    reply = worker.handle({"op": "query", "structure": "g", "query": "tc",
                           "backend": "gpu"})
    assert reply["error"]["kind"] == "input"


def test_zero_deadline_is_a_typed_resource_error(worker):
    reply = worker.handle({"op": "query", "structure": "g", "query": "tc",
                           "deadline_seconds": 0.0})
    assert reply["error"]["kind"] == "resource"
    assert reply["error"]["type"] == "DeadlineExceeded"
    assert "partial_stats" in reply["error"]


def test_row_limit_is_a_typed_resource_error(worker):
    reply = worker.handle({"op": "query", "structure": "g", "query": "tc",
                           "max_rows": 1})
    assert reply["error"]["kind"] == "resource"
    assert reply["error"]["type"] == "RowLimitExceeded"
    assert reply["error"]["limit"] == 1


def test_external_cancel_token_reaches_the_budget(worker):
    token = CancelToken()
    token.cancel()
    worker.external_cancel = token
    reply = worker.handle({"op": "query", "structure": "g", "query": "tc",
                           "deadline_seconds": 30.0})
    worker.external_cancel = None
    assert reply["error"]["type"] == "EvaluationCancelled"


# ----------------------------------------------------- cache invalidation


def test_reload_invalidates_the_plan_cache(worker, snapshot_path):
    worker.handle({"op": "query", "structure": "g", "query": "tc"})
    worker.handle({"op": "load", "name": "g", "path": str(snapshot_path)})
    reply = worker.handle({"op": "query", "structure": "g", "query": "tc"})
    assert not reply["cached"], "reload must drop the old structure's plans"


def test_stats_signature_tracks_cardinalities():
    small = graph_structure(3, [(0, 1)])
    bigger = graph_structure(3, [(0, 1), (1, 2)])
    assert stats_signature(small) != stats_signature(bigger)
    assert stats_signature(small) == stats_signature(
        graph_structure(3, [(0, 1)]))


def test_stale_checkers_are_evicted_not_leaked(worker, tmp_path):
    """A structure whose statistics change gets a fresh checker and the
    stale one (plans optimized against dead statistics) is dropped."""
    from repro.structures import save_snapshot

    worker.handle({"op": "query", "structure": "g", "query": "tc"})
    assert len(worker._checkers) == 1
    grown = tmp_path / "grown.snap"
    save_snapshot(graph_structure(8, [(i, i + 1) for i in range(7)]), grown)
    worker.handle({"op": "load", "name": "g", "path": str(grown)})
    worker.handle({"op": "query", "structure": "g", "query": "tc"})
    keys = [key for key in worker._checkers if key[0] == "g"]
    assert len(keys) == 1, "stale-signature checker must be evicted"


# ----------------------------------------------------------- envelopes


def test_error_envelope_shapes():
    assert error_envelope(KeyError("x"))["kind"] == "input"
    assert error_envelope(ValueError("x"))["kind"] == "input"
    assert error_envelope(RuntimeError("x"))["kind"] == "internal"
    from repro.core.errors import ResourceLimitExceeded

    envelope = error_envelope(ResourceLimitExceeded("rows", 10, 11))
    assert envelope["kind"] == "resource"
    assert (envelope["resource"], envelope["limit"], envelope["used"]) == \
        ("rows", 10, 11)
