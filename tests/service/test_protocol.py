"""Wire-protocol tests: framing round trips, torn frames, deadlines.

Everything that can go wrong on the wire must surface as a typed
:class:`~repro.core.errors.ProtocolError` (or ``None`` for a clean EOF
*between* frames — that is how a worker death is told apart from a torn
message).  Nothing here may hang: :class:`FrameStream` reads carry
deadlines.
"""

from __future__ import annotations

import io
import os
import threading

import pytest

from repro.core.errors import ProtocolError
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    FrameStream,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.testing.chaos import Fault

# ------------------------------------------------------------ file-like


def test_round_trip():
    message = {"op": "query", "rows": [[0, 1], [1, 2]], "π": "ok"}
    buffer = io.BytesIO()
    write_frame(buffer, message)
    buffer.seek(0)
    assert read_frame(buffer) == message
    assert read_frame(buffer) is None  # clean EOF between frames


def test_many_frames_back_to_back():
    buffer = io.BytesIO()
    for index in range(5):
        write_frame(buffer, {"id": index})
    buffer.seek(0)
    assert [read_frame(buffer)["id"] for _ in range(5)] == list(range(5))


def test_torn_length_prefix():
    with pytest.raises(ProtocolError, match="length prefix"):
        read_frame(io.BytesIO(b"\x00\x00"))


def test_torn_payload():
    frame = encode_frame({"op": "ping"})
    with pytest.raises(ProtocolError, match="inside a frame payload"):
        read_frame(io.BytesIO(frame[:-3]))


def test_payload_must_be_json():
    bad = len(b"not json").to_bytes(4, "big") + b"not json"
    with pytest.raises(ProtocolError, match="not valid JSON"):
        read_frame(io.BytesIO(bad))


def test_payload_must_be_an_object():
    frame = len(b"[1,2]").to_bytes(4, "big") + b"[1,2]"
    with pytest.raises(ProtocolError, match="JSON object"):
        read_frame(io.BytesIO(frame))


def test_implausible_length_prefix_is_rejected_before_allocation():
    huge = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(ProtocolError, match="cap"):
        read_frame(io.BytesIO(huge + b"x"))


# ------------------------------------------------------------ FrameStream


@pytest.fixture
def pipe_pair():
    """Two FrameStreams over a real pipe: ``left`` writes, ``right``
    reads (one direction is all these tests need)."""
    read_fd, write_fd = os.pipe()
    left = FrameStream(None, write_fd)
    right = FrameStream(read_fd, None)
    yield left, right
    left.close()
    right.close()


def test_stream_round_trip(pipe_pair):
    left, right = pipe_pair
    left.send({"op": "ping", "id": 7})
    assert right.receive(timeout=5.0) == {"op": "ping", "id": 7}


def test_stream_eof_is_none(pipe_pair):
    left, right = pipe_pair
    left.close()
    assert right.receive(timeout=5.0) is None


def test_stream_eof_mid_frame_is_a_protocol_error(pipe_pair):
    left, right = pipe_pair
    frame = encode_frame({"op": "ping"})
    os.write(left._write_fd, frame[:-2])
    left.close()
    with pytest.raises(ProtocolError, match="ended inside a frame"):
        right.receive(timeout=5.0)


def test_stream_read_deadline(pipe_pair):
    """A silent peer (hung worker) surfaces as TimeoutError, never a
    blocked thread."""
    _, right = pipe_pair
    with pytest.raises(TimeoutError):
        right.receive(timeout=0.05)


def test_stream_deadline_mid_frame(pipe_pair):
    left, right = pipe_pair
    os.write(left._write_fd, encode_frame({"op": "ping"})[:4])
    with pytest.raises(TimeoutError):
        right.receive(timeout=0.05)


def test_stream_send_after_close_is_typed(pipe_pair):
    left, _ = pipe_pair
    left.close()
    with pytest.raises(ProtocolError, match="write-closed"):
        left.send({"op": "ping"})


def test_stream_write_to_broken_pipe_is_typed(pipe_pair):
    left, right = pipe_pair
    right.close()
    with pytest.raises(ProtocolError, match="cannot write frame"):
        # One huge frame overflows the pipe buffer so the broken pipe is
        # observed synchronously even before the first read.
        left.send({"blob": "x" * (1 << 20)})


def test_stream_interleaved_from_another_thread(pipe_pair):
    left, right = pipe_pair

    def feed():
        for index in range(3):
            left.send({"id": index})

    thread = threading.Thread(target=feed)
    thread.start()
    got = [right.receive(timeout=5.0)["id"] for _ in range(3)]
    thread.join()
    assert got == [0, 1, 2]


# ----------------------------------------------------------- chaos seam


def test_net_drop_chaos_raises(inject_faults):
    inject_faults(Fault("service.net.drop"))
    with pytest.raises(ProtocolError, match="dropped in transit"):
        encode_frame({"op": "ping"})


def test_net_corrupt_chaos_truncates_to_a_torn_frame(inject_faults):
    """A corrupted (truncated) frame must parse as a *torn* frame on the
    read side — never as a half-valid message."""
    inject_faults(Fault("service.net.drop", action="corrupt"))
    mangled = encode_frame({"op": "ping", "padding": "x" * 64})
    with pytest.raises(ProtocolError):
        read_frame(io.BytesIO(mangled))
