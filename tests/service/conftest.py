"""Shared fixtures for the query-service suite (P10).

Pool tests spawn real worker *processes*, so the fixtures keep the
structures small and the pools short-lived; every pool is drained on
teardown so no test leaks a child process into the next.
"""

from __future__ import annotations

import json

import pytest

from repro.logic.eval import define_relation
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures import random_alternating_graph, save_snapshot


@pytest.fixture(scope="session")
def graph_structure_fixture():
    """The one structure every service test queries (small on purpose:
    worker spawn, not evaluation, dominates these tests' budget)."""
    return random_alternating_graph(6, seed=11)


@pytest.fixture(scope="session")
def snapshot_path(tmp_path_factory, graph_structure_fixture):
    path = tmp_path_factory.mktemp("service") / "g.snap"
    save_snapshot(graph_structure_fixture, path)
    return path


@pytest.fixture(scope="session")
def json_path(tmp_path_factory, graph_structure_fixture):
    """The same structure as a JSON database file (the other load path).
    ``D`` pins the universe size the way the CLI's own fixtures do."""
    structure = graph_structure_fixture
    payload = {"D": list(range(structure.size))}
    for name, relation in structure.relations.items():
        rows = sorted(relation)
        if rows and len(rows[0]) == 1:
            payload[name] = [row[0] for row in rows]
        else:
            payload[name] = [list(row) for row in rows]
    path = tmp_path_factory.mktemp("service") / "g.json"
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture(scope="session")
def oracle(graph_structure_fixture):
    """Tuple-backend ground truth, in the worker's wire shape (sorted
    lists of lists), keyed by query name."""

    def answer(name):
        query = CANONICAL_QUERIES[name]
        rows = define_relation(query.formula(), graph_structure_fixture,
                               query.variables, backend="tuple")
        return sorted(list(row) for row in rows)

    return answer
