"""Admission-control tests: bounded concurrency, bounded queue, typed
shedding.  Nothing here may block unboundedly: a request is admitted,
queued (bounded by the deadline), or shed with :class:`Overloaded`.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import Overloaded
from repro.service.admission import AdmissionController
from repro.testing.chaos import Fault


def test_admits_up_to_the_concurrency_cap():
    admission = AdmissionController(max_concurrency=3, max_queue_depth=0)
    slots = [admission.slot().__enter__() for _ in range(3)]
    assert admission.snapshot()["active"] == 3
    for slot in slots:
        slot.__exit__(None, None, None)
    assert admission.snapshot()["active"] == 0
    assert admission.snapshot()["admitted"] == 3


def test_sheds_past_the_queue_depth():
    admission = AdmissionController(max_concurrency=1, max_queue_depth=0)
    with admission.slot():
        with pytest.raises(Overloaded) as shed:
            with admission.slot():
                pass
        assert shed.value.retry_after >= 1.0
    assert admission.snapshot()["shed"] == 1


def test_queued_request_runs_when_a_slot_frees():
    admission = AdmissionController(max_concurrency=1, max_queue_depth=4)
    entered = threading.Event()
    released = threading.Event()

    def occupant():
        with admission.slot():
            entered.set()
            released.wait(timeout=5.0)

    thread = threading.Thread(target=occupant)
    thread.start()
    assert entered.wait(timeout=5.0)
    results = []

    def waiter():
        with admission.slot(deadline_seconds=5.0):
            results.append("ran")

    queued = threading.Thread(target=waiter)
    queued.start()
    time.sleep(0.05)  # the waiter is parked in the queue
    assert admission.snapshot()["queued"] == 1
    released.set()
    queued.join(timeout=5.0)
    thread.join(timeout=5.0)
    assert results == ["ran"]


def test_queued_past_the_deadline_is_shed_not_hung():
    admission = AdmissionController(max_concurrency=1, max_queue_depth=4)
    with admission.slot():
        started = time.monotonic()
        with pytest.raises(Overloaded, match="deadline"):
            with admission.slot(deadline_seconds=0.05):
                pass
        assert time.monotonic() - started < 2.0


def test_overflow_chaos_point_forces_a_shed(inject_faults):
    inject_faults(Fault("service.queue.overflow"))
    admission = AdmissionController(max_concurrency=8)
    with pytest.raises(Overloaded, match="injected"):
        with admission.slot():
            pass
    assert admission.snapshot()["shed"] == 1


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionController(max_concurrency=0)
    with pytest.raises(ValueError):
        AdmissionController(max_queue_depth=-1)
