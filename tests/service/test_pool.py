"""Supervised-pool tests: crash detection, respawn, retry, breaker.

These spawn real worker processes.  The chaos crash point is armed
through the environment (each worker re-arms the policy at spawn), so a
``service.worker.crash`` fault with ``max_fires=1`` kills *every fresh
worker on its first query* — the hard-down scenario.  Recovery is
modelled by lifting the policy: respawns after that come up clean, and
the pool must return to full readiness and correct answers.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.errors import WorkerCrashed
from repro.service.pool import PoolConfig, WorkerPool, _Breaker
from repro.testing.chaos import Fault, uninstall_policy


def wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def lift_chaos(pool):
    """End a crash storm deterministically: uninstall the policy, then
    SIGKILL every worker spawned while it was armed — the idle-death
    sweep respawns them with no policy in the environment."""
    uninstall_policy()
    for handle in pool._workers:
        proc = handle.proc
        if proc is not None and proc.poll() is None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass


def recover(pool, request, timeout=20.0):
    """Query until the pool heals.  A worker whose spawn raced the
    policy uninstall may still be armed; the contract is only that every
    answer is correct-or-typed and that clean respawns converge."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return pool.query(dict(request), deadline_seconds=5.0)
        except WorkerCrashed:
            if time.monotonic() > deadline:
                raise


@pytest.fixture
def pool(snapshot_path):
    pool = WorkerPool(PoolConfig(workers=2, max_retries=2,
                                 backoff_base_seconds=0.01,
                                 backoff_cap_seconds=0.1,
                                 grace_seconds=5.0))
    pool.start()
    pool.load("g", str(snapshot_path))
    yield pool
    uninstall_policy()  # never leave a pool draining under chaos
    pool.drain(timeout=10.0)


TC = {"op": "query", "structure": "g", "query": "tc"}


def test_healthy_pool_answers_correctly(pool, oracle):
    reply = pool.query(dict(TC))
    assert reply["ok"] and reply["rows"] == oracle("tc")
    assert pool.ready()


def test_queries_run_out_of_process(pool):
    pids = {pool.query(dict(TC))["pid"] for _ in range(4)}
    assert os.getpid() not in pids, "pool queries must not run in-process"


def test_sigkill_while_idle_is_survived(pool, oracle):
    """kill -9 one *idle* worker; the pool must answer from the survivor
    at once and the sweep must respawn the corpse back to readiness."""
    victim = pool._workers[0]
    os.kill(victim.proc.pid, signal.SIGKILL)
    victim.proc.wait()
    reply = pool.query(dict(TC))
    assert reply["ok"] and reply["rows"] == oracle("tc")
    assert wait_until(pool.ready), pool.health()
    assert pool.stats["worker_deaths"] >= 1


def test_crash_storm_is_a_typed_error_never_a_hang(snapshot_path,
                                                   inject_faults, oracle):
    """Every worker (and every respawn) dies on its first query: the
    retry budget must bottom out in WorkerCrashed, and once the chaos is
    lifted the pool must heal to readiness and correct answers.  The
    policy rides the child environment, so it is armed *before* the
    workers spawn."""
    inject_faults(Fault("service.worker.crash", max_fires=1))
    pool = WorkerPool(PoolConfig(workers=2, max_retries=2,
                                 backoff_base_seconds=0.01,
                                 backoff_cap_seconds=0.1))
    pool.start()
    pool.load("g", str(snapshot_path))
    try:
        with pytest.raises(WorkerCrashed) as crash:
            pool.query(dict(TC), deadline_seconds=10.0)
        assert crash.value.attempts == pool.config.max_retries + 1
        assert pool.stats["worker_deaths"] >= pool.config.max_retries + 1
        assert pool.stats["crashed_replies"] == 1

        lift_chaos(pool)
        reply = recover(pool, TC)
        assert reply["ok"] and reply["rows"] == oracle("tc")
        assert wait_until(pool.ready), pool.health()
    finally:
        uninstall_policy()
        pool.drain(timeout=10.0)


def test_breaker_trips_columnar_down_to_plan(snapshot_path, inject_faults,
                                             oracle):
    """Repeated deaths serving one structure trip its circuit breaker:
    later columnar requests run on the plan rung (correct answers, just
    degraded) and the trip is surfaced as a DegradationEvent."""
    inject_faults(Fault("service.worker.crash", max_fires=1))
    pool = WorkerPool(PoolConfig(workers=2, max_retries=1,
                                 backoff_base_seconds=0.01,
                                 breaker_threshold=2,
                                 breaker_reset_seconds=60.0))
    pool.start()
    pool.load("g", str(snapshot_path))
    try:
        with pytest.raises(WorkerCrashed):
            pool.query(dict(TC), deadline_seconds=10.0)
        lift_chaos(pool)
        assert pool._breaker_open("g")
        reply = recover(pool, dict(TC, backend="columnar"))
        assert reply["ok"] and reply["rows"] == oracle("tc")
        assert reply["backend"] == "plan", "breaker must demote columnar"
        events = pool.degradations()
        assert [(e.stage, e.fallback) for e in events] == \
            [("service.columnar", "plan")]
        assert pool.health()["breakers"]["g"]["tripped"]
        assert wait_until(pool.ready), pool.health()
    finally:
        uninstall_policy()
        pool.drain(timeout=10.0)


def test_breaker_half_opens_after_the_reset_window():
    """State-machine unit test (no processes): a tripped breaker re-opens
    columnar dispatch after ``breaker_reset_seconds`` of calm, resetting
    its death count."""
    pool = WorkerPool(PoolConfig(workers=1, breaker_threshold=1,
                                 breaker_reset_seconds=0.05))
    with pool._lock:
        pool._breakers["g"] = _Breaker(deaths=1,
                                       tripped_at=time.monotonic())
    assert pool._breaker_open("g")
    time.sleep(0.06)
    assert not pool._breaker_open("g"), "breaker must half-open"
    assert pool._breakers["g"].deaths == 0


def test_drain_refuses_new_work(pool):
    pool.drain(timeout=10.0)
    assert not pool.ready()
    with pytest.raises(WorkerCrashed, match="draining"):
        pool.query(dict(TC))


def test_load_failure_is_typed(pool, tmp_path):
    bad = tmp_path / "bad.snap"
    bad.write_text("not a snapshot")
    with pytest.raises(WorkerCrashed, match="load"):
        pool.load("bad", str(bad))
