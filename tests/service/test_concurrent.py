"""Concurrency audit + the multi-client differential gate (P10).

The acceptance property: N concurrent clients hammering the service
with canonical queries get answers that all equal the single-threaded
tuple oracle — across worker processes, across backends, and under a
chaos schedule that kills workers mid-query.  Completing with a *typed*
error is allowed under chaos; a wrong answer never is.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.errors import WorkerCrashed
from repro.logic.eval import ModelChecker, define_relation
from repro.logic.queries import CANONICAL_QUERIES
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.server import QueryService, ServiceConfig
from repro.testing.chaos import Fault, uninstall_policy
from test_pool import lift_chaos, recover, wait_until

QUERIES = ("tc", "apath")


# ------------------------------------------------- engine-level audit


def test_one_model_checker_is_safe_across_threads(graph_structure_fixture,
                                                  oracle):
    """The ModelChecker serializes its entry points: hammering *one*
    checker from many threads must corrupt neither its memos nor its
    governor stack."""
    checker = ModelChecker(graph_structure_fixture, backend="plan")
    expected = {name: oracle(name) for name in QUERIES}

    def probe(index):
        name = QUERIES[index % len(QUERIES)]
        query = CANONICAL_QUERIES[name]
        columns, rows = checker.defined_relation(query.formula())
        positions = [columns.index(variable) for variable in query.variables]
        return name, sorted([row[p] for p in positions] for row in rows)

    with ThreadPoolExecutor(max_workers=8) as executor:
        for name, got in executor.map(probe, range(24)):
            assert got == expected[name]


def test_fresh_checkers_per_thread_agree(graph_structure_fixture, oracle):
    """The recommended parallelism (one checker per thread) — exercises
    the shared codegen/compile caches under contention."""

    def probe(index):
        backend = ("plan", "columnar")[index % 2]
        name = QUERIES[index % len(QUERIES)]
        query = CANONICAL_QUERIES[name]
        rows = define_relation(query.formula(), graph_structure_fixture,
                               query.variables, backend=backend)
        return name, sorted(list(row) for row in rows)

    with ThreadPoolExecutor(max_workers=8) as executor:
        for name, got in executor.map(probe, range(24)):
            assert got == oracle(name)


# ------------------------------------------------ service-level gates


def test_concurrent_clients_match_the_oracle(snapshot_path, oracle):
    """The multi-worker differential test: concurrent clients, both plan
    rungs, every answer equal to the tuple oracle."""
    pool = WorkerPool(PoolConfig(workers=2))
    pool.start()
    pool.load("g", str(snapshot_path))
    try:
        def client(index):
            name = QUERIES[index % len(QUERIES)]
            backend = ("plan", "columnar")[index % 2]
            reply = pool.query({"op": "query", "structure": "g",
                                "query": name, "backend": backend},
                               deadline_seconds=30.0)
            assert reply["ok"], reply
            return name, reply["rows"]

        with ThreadPoolExecutor(max_workers=6) as executor:
            for name, rows in executor.map(client, range(18)):
                assert rows == oracle(name)
        assert pool.stats["worker_deaths"] == 0
    finally:
        pool.drain(timeout=10.0)


def test_concurrent_inline_service(snapshot_path, oracle):
    service = QueryService(ServiceConfig(workers=0, max_concurrency=4,
                                         max_queue_depth=32))
    service.start()
    assert service.load("g", str(snapshot_path))["ok"]

    def client(index):
        name = QUERIES[index % len(QUERIES)]
        status, reply = service.handle_query(
            {"structure": "g", "query": name})
        assert status == 200, reply
        return name, reply["rows"]

    with ThreadPoolExecutor(max_workers=6) as executor:
        for name, rows in executor.map(client, range(18)):
            assert rows == oracle(name)


def test_chaos_schedule_correct_or_typed_then_recovers(snapshot_path,
                                                       inject_faults,
                                                       oracle):
    """The availability gate: workers being killed mid-query (every
    fresh worker dies on its first query, well past the three-death
    acceptance floor) must yield only correct answers or typed
    WorkerCrashed — and the pool must return to full readiness."""
    inject_faults(Fault("service.worker.crash", max_fires=1))
    pool = WorkerPool(PoolConfig(workers=2, max_retries=2,
                                 backoff_base_seconds=0.01,
                                 backoff_cap_seconds=0.1))
    pool.start()
    pool.load("g", str(snapshot_path))
    try:
        outcomes = {"ok": 0, "crashed": 0}

        def client(index):
            name = QUERIES[index % len(QUERIES)]
            try:
                reply = pool.query({"op": "query", "structure": "g",
                                    "query": name}, deadline_seconds=10.0)
            except WorkerCrashed as crash:
                assert crash.attempts >= 1
                return "crashed", None
            assert reply["ok"], reply
            assert reply["rows"] == oracle(name), "wrong answer under chaos"
            return "ok", reply["rows"]

        with ThreadPoolExecutor(max_workers=4) as executor:
            for outcome, _ in executor.map(client, range(12)):
                outcomes[outcome] += 1
        assert outcomes["ok"] + outcomes["crashed"] == 12
        assert pool.stats["worker_deaths"] >= 3, pool.stats

        lift_chaos(pool)
        reply = recover(pool, {"op": "query", "structure": "g",
                               "query": "tc"})
        assert reply["ok"] and reply["rows"] == oracle("tc")
        assert wait_until(pool.ready), pool.health()
    finally:
        uninstall_policy()
        pool.drain(timeout=10.0)


def test_admission_sheds_under_saturation(snapshot_path):
    """Overload the inline service far past its queue: every request
    either answers correctly or sheds with a typed 503 — no hangs."""
    service = QueryService(ServiceConfig(workers=0, max_concurrency=1,
                                         max_queue_depth=1,
                                         default_deadline_seconds=10.0))
    service.start()
    assert service.load("g", str(snapshot_path))["ok"]
    statuses = []

    def client(index):
        status, reply = service.handle_query(
            {"structure": "g", "query": "tc"})
        assert status in (200, 503), reply
        return status

    with ThreadPoolExecutor(max_workers=8) as executor:
        statuses = list(executor.map(client, range(16)))
    assert statuses.count(200) >= 1
