"""Server tests: status taxonomy, endpoints, drain, and the CLI.

The transport-independent :class:`QueryService` is tested directly
(inline mode shares every code path above the dispatch seam with the
pool); one end-to-end slice runs over real HTTP, and one over the
``python -m repro serve`` subprocess including SIGTERM drain.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.core.governor import CancelToken
from repro.service.server import (
    QueryService,
    ServiceConfig,
    _make_server,
)
from repro.testing.chaos import Fault

# ----------------------------------------------------------- status map


@pytest.mark.parametrize("reply,status", [
    ({"ok": True}, 200),
    ({"ok": False, "error": {"kind": "input"}}, 400),
    ({"ok": False, "error": {"kind": "resource",
                             "type": "RowLimitExceeded"}}, 422),
    ({"ok": False, "error": {"kind": "resource",
                             "type": "DeadlineExceeded"}}, 504),
    ({"ok": False, "error": {"kind": "resource",
                             "type": "EvaluationCancelled"}}, 504),
    ({"ok": False, "error": {"kind": "overload"}}, 503),
    ({"ok": False, "error": {"kind": "crash"}}, 502),
    ({"ok": False, "error": {"kind": "internal"}}, 500),
    ({"ok": False, "error": {}}, 500),
])
def test_status_taxonomy(reply, status):
    assert QueryService._status_of(reply) == status


# -------------------------------------------------------- inline service


@pytest.fixture
def service(snapshot_path):
    service = QueryService(ServiceConfig(workers=0, max_concurrency=2,
                                         max_queue_depth=2))
    service.start()
    assert service.load("g", str(snapshot_path))["ok"]
    return service


def test_query_answers_match_the_oracle(service, oracle):
    for name in ("tc", "apath"):
        status, reply = service.handle_query(
            {"structure": "g", "query": name})
        assert status == 200, reply
        assert reply["rows"] == oracle(name)


def test_missing_fields_are_400(service):
    status, reply = service.handle_query({"query": "tc"})
    assert status == 400 and reply["error"]["kind"] == "input"
    status, _ = service.handle_query({"structure": "g"})
    assert status == 400


def test_unknown_query_is_400(service):
    status, reply = service.handle_query({"structure": "g", "query": "zz"})
    assert status == 400
    assert "zz" in reply["error"]["message"]


def test_bad_deadline_is_400(service):
    status, _ = service.handle_query(
        {"structure": "g", "query": "tc", "deadline_seconds": "soon"})
    assert status == 400
    status, _ = service.handle_query(
        {"structure": "g", "query": "tc", "deadline_seconds": -1})
    assert status == 400


def test_zero_deadline_is_504(service):
    status, reply = service.handle_query(
        {"structure": "g", "query": "tc", "deadline_seconds": 0.0})
    assert status == 504
    assert reply["error"]["type"] == "DeadlineExceeded"


def test_row_limit_is_422(service):
    status, reply = service.handle_query(
        {"structure": "g", "query": "tc", "max_rows": 1})
    assert status == 422
    assert reply["error"]["type"] == "RowLimitExceeded"


def test_cancelled_client_token_is_a_typed_cancellation(service):
    token = CancelToken()
    token.cancel()
    status, reply = service.handle_query(
        {"structure": "g", "query": "tc"}, cancel_token=token)
    assert status == 504
    assert reply["error"]["type"] == "EvaluationCancelled"


def test_overflow_chaos_is_503_with_retry_after(service, inject_faults):
    inject_faults(Fault("service.queue.overflow"))
    status, reply = service.handle_query({"structure": "g", "query": "tc"})
    assert status == 503
    assert reply["error"]["retry_after"] >= 1.0


def test_draining_service_sheds_with_503(service):
    service.drain()
    status, reply = service.handle_query({"structure": "g", "query": "tc"})
    assert status == 503 and reply["error"]["type"] == "Draining"
    assert not service.ready()


def test_health_reports_mode_and_admission(service):
    body = service.health()
    assert body["mode"] == "inline" and body["ready"]
    assert body["admission"]["max_concurrency"] == 2


# ------------------------------------------------------------- real HTTP


@pytest.fixture
def http_server(service):
    server = _make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address
    server.shutdown()
    server.server_close()
    thread.join(timeout=2.0)


def _request(address, method, path, body=None):
    connection = http.client.HTTPConnection(*address, timeout=10.0)
    try:
        connection.request(
            method, path,
            body=None if body is None else json.dumps(body),
            headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


def test_http_end_to_end(http_server, oracle, snapshot_path):
    status, _, body = _request(http_server, "GET", "/ready")
    assert status == 200 and body["ready"]
    # The limit probe must run before the cache is warm: a cached answer
    # re-materializes nothing, so no limit can trip on it.
    status, _, body = _request(http_server, "POST", "/query",
                               {"structure": "g", "query": "tc",
                                "max_rows": 1})
    assert status == 422, body
    status, _, body = _request(http_server, "POST", "/query",
                               {"structure": "g", "query": "tc"})
    assert status == 200 and body["rows"] == oracle("tc")
    status, _, body = _request(http_server, "GET", "/health")
    assert status == 200 and body["mode"] == "inline"
    status, _, body = _request(http_server, "POST", "/load",
                               {"name": "g2", "path": str(snapshot_path)})
    assert status == 200, body
    status, _, _ = _request(http_server, "GET", "/nope")
    assert status == 404


def test_http_overload_carries_retry_after(http_server, inject_faults):
    inject_faults(Fault("service.queue.overflow"))
    status, headers, body = _request(http_server, "POST", "/query",
                                     {"structure": "g", "query": "tc"})
    assert status == 503
    assert int(headers["Retry-After"]) >= 1


def test_http_rejects_non_json_bodies(http_server):
    connection = http.client.HTTPConnection(*http_server, timeout=10.0)
    try:
        connection.request("POST", "/query", body=b"{nope",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        assert response.status == 400
        assert b"not valid JSON" in response.read()
    finally:
        connection.close()


# ------------------------------------------------------ the serve CLI


def test_serve_subprocess_sigterm_drains(snapshot_path, tmp_path):
    """The acceptance slice for graceful shutdown: boot ``repro serve``,
    hit /ready over real HTTP, SIGTERM it, and require a clean exit 0
    with the drain logged."""
    import repro

    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--load", f"g={snapshot_path}"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=environment, text=True)
    try:
        banner = process.stdout.readline()
        assert "listening on http://" in banner, banner
        address = banner.rsplit("http://", 1)[1].strip().split()[0]
        host, _, port = address.partition(":")
        deadline = time.monotonic() + 30.0
        while True:
            status, _, _ = _request((host, int(port)), "GET", "/ready")
            if status == 200:
                break
            assert time.monotonic() < deadline, "server never became ready"
            time.sleep(0.1)
        status, _, body = _request((host, int(port)), "POST", "/query",
                                   {"structure": "g", "query": "tc"})
        assert status == 200 and body["ok"]
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=30.0)
        assert process.returncode == 0, stderr
        assert "draining" in stderr and "drained" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
