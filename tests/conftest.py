"""Shared fixtures and hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.core import Atom, Database, Evaluator, make_set, make_tuple, standard_library

# The SRL interpreter is deliberately a straightforward tree-walker, so some
# property tests run it thousands of times.  The default profile keeps the
# suite thorough but bounded; export REPRO_HYPOTHESIS_PROFILE=thorough for a
# deeper (slower) run.
settings.register_profile(
    "default",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=200, deadline=None)
settings.register_profile("quick", max_examples=15, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def stdlib():
    """A fresh standard-library program (Fact 2.4 definitions)."""
    return standard_library()


@pytest.fixture
def evaluator(stdlib):
    """An evaluator over the standard library."""
    return Evaluator(stdlib)


@pytest.fixture
def small_sets():
    """A pair of small atom sets used across stdlib tests."""
    s = make_set(Atom(1), Atom(2), Atom(3))
    t = make_set(Atom(3), Atom(4))
    return s, t


@pytest.fixture
def inject_faults():
    """Arm a seeded :class:`~repro.testing.chaos.ChaosPolicy` for one test.

    Yields a factory: ``policy = inject_faults(Fault(...), seed=3)``.  The
    optimizer's plan cache is cleared around every installation — a cached
    plan would skip the very pass the fault is aimed at — and the policy is
    always uninstalled afterwards, so no chaos leaks between tests.
    """
    from repro.logic.optimize import clear_plan_cache
    from repro.testing.chaos import ChaosPolicy, install_policy, uninstall_policy

    def arm(*faults, seed: int = 0):
        clear_plan_cache()
        policy = ChaosPolicy(tuple(faults), seed=seed)
        install_policy(policy)
        return policy

    yield arm
    uninstall_policy()
    clear_plan_cache()


@pytest.fixture
def edge_database():
    """A tiny directed graph as a database: EDGES of pairs, NODES of atoms."""
    nodes = [Atom(i) for i in range(5)]
    edges = [(0, 1), (1, 2), (2, 3), (0, 4)]
    return Database({
        "NODES": make_set(*nodes),
        "EDGES": make_set(*(make_tuple(Atom(a), Atom(b)) for a, b in edges)),
    })
