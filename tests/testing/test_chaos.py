"""Unit tests for the fault-injection harness itself (PR 6).

The chaos layer must be deterministic (seeded), scoped (install /
uninstall), and honest about what fired — otherwise the differential
sweeps built on top of it prove nothing.
"""

from __future__ import annotations

import time

import pytest

from repro.testing.chaos import (
    ACTIONS,
    INJECTION_POINTS,
    ChaosError,
    ChaosPolicy,
    Fault,
    active_policy,
    chaos,
    chaos_point,
    install_policy,
    uninstall_policy,
)


@pytest.fixture(autouse=True)
def _no_leftover_policy():
    yield
    uninstall_policy()


class TestChaosPoint:
    def test_no_policy_is_a_passthrough(self):
        payload = object()
        assert chaos_point("relalg.join.probe", payload) is payload
        assert chaos_point("anything") is None

    def test_raise_fault(self):
        with chaos(Fault("relalg.join.probe")):
            with pytest.raises(ChaosError) as info:
                chaos_point("relalg.join.probe")
        assert info.value.point == "relalg.join.probe"

    def test_corrupt_fault_substitutes_the_payload(self):
        with chaos(Fault("engine.memo.store", action="corrupt")):
            result = chaos_point("engine.memo.store", {1, 2},
                                 corrupt=lambda rows: rows | {"garbage"})
        assert result == {1, 2, "garbage"}

    def test_corrupt_without_a_corrupt_callback_is_a_noop(self):
        payload = object()
        with chaos(Fault("engine.memo.store", action="corrupt")) as policy:
            assert chaos_point("engine.memo.store", payload) is payload
        assert policy.fired == [("engine.memo.store", "corrupt")]

    def test_delay_fault_sleeps(self):
        with chaos(Fault("plan.fixpoint.round", action="delay",
                         delay_seconds=0.02)):
            start = time.monotonic()
            chaos_point("plan.fixpoint.round")
            assert time.monotonic() - start >= 0.015

    def test_unmatched_points_pass_through(self):
        with chaos(Fault("relalg.join.probe")):
            assert chaos_point("engine.memo.store", 5) == 5


class TestFaultMatching:
    def test_exact_match(self):
        fault = Fault("optimize.pass.reorder")
        assert fault.matches("optimize.pass.reorder")
        assert not fault.matches("optimize.pass.fuse")

    def test_prefix_glob(self):
        fault = Fault("optimize.pass.*")
        assert all(fault.matches(p) for p in INJECTION_POINTS
                   if p.startswith("optimize.pass."))
        assert not fault.matches("relalg.join.probe")

    def test_star_matches_everything(self):
        fault = Fault("*")
        assert all(fault.matches(p) for p in INJECTION_POINTS)

    def test_unknown_action_is_rejected(self):
        with pytest.raises(ValueError, match="chaos action"):
            Fault("x", action="explode")

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            Fault("x", probability=1.5)


class TestChaosPolicy:
    def test_max_fires_default_is_one(self):
        with chaos(Fault("relalg.join.probe")) as policy:
            with pytest.raises(ChaosError):
                chaos_point("relalg.join.probe")
            # The second pass through the same site must be clean — this is
            # what lets a fallback re-enter the code path and succeed.
            assert chaos_point("relalg.join.probe", "ok") == "ok"
        assert policy.fired == [("relalg.join.probe", "raise")]

    def test_unlimited_fires(self):
        with chaos(Fault("relalg.join.probe", max_fires=None)) as policy:
            for _ in range(3):
                with pytest.raises(ChaosError):
                    chaos_point("relalg.join.probe")
        assert len(policy.fired) == 3

    def test_probability_is_seed_deterministic(self):
        def pattern(seed: int) -> list[bool]:
            fires = []
            with chaos(Fault("p", probability=0.5, max_fires=None),
                       seed=seed):
                for _ in range(20):
                    try:
                        chaos_point("p")
                        fires.append(False)
                    except ChaosError:
                        fires.append(True)
            return fires

        assert pattern(7) == pattern(7)
        assert any(pattern(7)) and not all(pattern(7))

    def test_install_uninstall(self):
        policy = ChaosPolicy((Fault("p"),))
        assert active_policy() is None
        install_policy(policy)
        assert active_policy() is policy
        uninstall_policy()
        assert active_policy() is None

    def test_registry_covers_the_engine_seams(self):
        assert "relalg.join.probe" in INJECTION_POINTS
        assert "plan.fixpoint.round" in INJECTION_POINTS
        assert "engine.memo.store" in INJECTION_POINTS
        assert any(p.startswith("optimize.pass.") for p in INJECTION_POINTS)
        assert set(ACTIONS) == {"raise", "delay", "corrupt"}
