"""Tests for the operational semantics (Section 2 reduction rules)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Atom,
    EvaluationLimits,
    Evaluator,
    Program,
    ResourceLimitExceeded,
    SRLList,
    SRLRuntimeError,
    make_set,
    make_tuple,
    parse_expression,
    parse_program,
    run_expression,
    run_program,
)
from repro.core.errors import SRLNameError


def run(text: str, **bindings):
    return run_expression(parse_expression(text), bindings)


class TestBasicRules:
    def test_boolean_constants(self):
        assert run("true") is True
        assert run("false") is False

    def test_if_true_selects_first_branch(self):
        assert run("(if true (atom 1) (atom 2))") == Atom(1)

    def test_if_false_selects_second_branch(self):
        assert run("(if false (atom 1) (atom 2))") == Atom(2)

    def test_if_branches_are_lazy(self):
        # The untaken branch would fail (choose of emptyset) if evaluated.
        assert run("(if true (atom 1) (choose emptyset))") == Atom(1)

    def test_if_requires_boolean_condition(self):
        with pytest.raises(SRLRuntimeError):
            run("(if (atom 1) true false)")

    def test_tuple_construction_and_selection(self):
        assert run("(sel 1 (tuple (atom 4) (atom 5)))") == Atom(4)
        assert run("(sel 2 (tuple (atom 4) (atom 5)))") == Atom(5)

    def test_select_on_non_tuple_raises(self):
        with pytest.raises(SRLRuntimeError):
            run("(sel 1 (atom 3))")

    def test_equality_on_tuples_is_componentwise(self):
        assert run("(= (tuple (atom 1) (atom 2)) (tuple (atom 1) (atom 2)))") is True
        assert run("(= (tuple (atom 1) (atom 2)) (tuple (atom 2) (atom 1)))") is False

    def test_equality_on_sets_ignores_insertion_order(self):
        text = "(= (insert (atom 1) (insert (atom 2) emptyset)) (insert (atom 2) (insert (atom 1) emptyset)))"
        assert run(text) is True

    def test_less_equal_uses_implementation_order(self):
        assert run("(<= (atom 1) (atom 2))") is True
        assert run("(<= (atom 2) (atom 1))") is False

    def test_insert_builds_sets(self):
        value = run("(insert (atom 1) (insert (atom 1) emptyset))")
        assert value == make_set(Atom(1))

    def test_insert_into_non_set_raises(self):
        with pytest.raises(SRLRuntimeError):
            run("(insert (atom 1) (atom 2))")

    def test_unbound_variable_raises(self):
        with pytest.raises(SRLNameError):
            run("UNKNOWN")

    def test_database_binding(self):
        assert run("S", S=make_set(Atom(7))) == make_set(Atom(7))


class TestSetReduce:
    def test_empty_set_returns_base(self):
        text = "(set-reduce emptyset (lambda (x e) x) (lambda (a r) (insert a r)) (atom 9) emptyset)"
        assert run(text) == Atom(9)

    def test_fold_matches_recursive_definition(self):
        # Copy a set by folding insert: the result must equal the input.
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        s = make_set(Atom(3), Atom(1), Atom(2))
        assert run(text, S=s) == s

    def test_traversal_threads_accumulator_in_ascending_order(self):
        # The accumulator visits the smallest element first, so returning `a`
        # unconditionally leaves the value produced for the *largest* element.
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) a) (atom 99) emptyset)"
        assert run(text, S=make_set(Atom(5), Atom(2), Atom(7))) == Atom(7)

    def test_accumulator_sees_smaller_elements_first(self):
        # Keep the first element scanned (only overwrite the sentinel once):
        # that element must be the minimum of the set.
        text = """(set-reduce S (lambda (x e) x)
                              (lambda (a r) (if (= r (atom 99)) a r))
                              (atom 99) emptyset)"""
        assert run(text, S=make_set(Atom(5), Atom(2), Atom(7))) == Atom(2)

    def test_extra_threads_context(self):
        # member(x, S) via extra.
        text = """(set-reduce S (lambda (e x) (= e x))
                              (lambda (a r) (if a true r)) false X)"""
        assert run(text, S=make_set(Atom(1), Atom(2)), X=Atom(2)) is True
        assert run(text, S=make_set(Atom(1), Atom(2)), X=Atom(5)) is False

    def test_lambda_scope_is_local(self):
        # An inner lambda cannot see an outer lambda's parameters: the
        # paper requires all reference to be local (extra exists for that).
        text = """(set-reduce S
                    (lambda (x e)
                      (set-reduce e (lambda (y z) x) (lambda (a r) a) (atom 0) emptyset))
                    (lambda (a r) a)
                    (atom 0) T)"""
        with pytest.raises(SRLNameError):
            run(text, S=make_set(Atom(1)), T=make_set(Atom(2)))

    def test_reduce_over_non_set_raises(self):
        text = "(set-reduce (atom 1) (lambda (x e) x) (lambda (a r) r) true emptyset)"
        with pytest.raises(SRLRuntimeError):
            run(text)

    def test_standalone_lambda_rejected(self):
        with pytest.raises(SRLRuntimeError):
            run("(lambda (x y) x)")

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=10))
    def test_identity_copy_for_arbitrary_sets(self, ranks):
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        s = make_set(*(Atom(r) for r in ranks))
        assert run(text, S=s) == s


class TestFunctionCalls:
    def test_composition(self):
        program = parse_program("""
        (define (not a) (if a false true))
        (define (nand a b) (not (if a b false)))
        (nand true true)
        """)
        assert run_program(program) is False

    def test_arity_mismatch(self):
        program = parse_program("(define (id x) x) (id true false)")
        with pytest.raises(SRLRuntimeError):
            run_program(program)

    def test_unknown_function(self):
        with pytest.raises(SRLNameError):
            run("(mystery true)")

    def test_recursion_is_rejected(self):
        program = parse_program("(define (loop x) (loop x)) (loop true)")
        with pytest.raises(SRLRuntimeError):
            run_program(program)

    def test_mutual_recursion_is_rejected(self):
        program = parse_program("""
        (define (f x) (g x))
        (define (g x) (f x))
        (f true)
        """)
        with pytest.raises(SRLRuntimeError):
            run_program(program)

    def test_call_helper(self):
        program = parse_program("(define (second p) (sel 2 p))")
        value = Evaluator(program).call("second", make_tuple(Atom(1), Atom(2)))
        assert value == Atom(2)


class TestExtensions:
    def test_new_returns_fresh_atom(self):
        s = make_set(Atom(0), Atom(1), Atom(2))
        fresh = run("(new S)", S=s)
        assert isinstance(fresh, Atom)
        assert fresh not in s

    def test_new_can_be_disabled(self):
        expr = parse_expression("(new S)")
        limits = EvaluationLimits(allow_new=False)
        with pytest.raises(SRLRuntimeError):
            run_expression(expr, {"S": make_set(Atom(0))}, limits=limits)

    def test_choose_and_rest(self):
        s = make_set(Atom(3), Atom(1), Atom(2))
        assert run("(choose S)", S=s) == Atom(1)
        assert run("(rest S)", S=s) == make_set(Atom(2), Atom(3))

    def test_list_cons_and_reduce(self):
        text = """(list-reduce L (lambda (x e) x)
                               (lambda (a r) (cons a r)) emptylist emptylist)"""
        xs = SRLList([Atom(1), Atom(2), Atom(1)])
        assert run(text, L=xs) == xs

    def test_lists_preserve_duplicates_unlike_sets(self):
        # cons the same element twice: the list has length 2, the set size 1.
        duplicate_list = run("(cons (atom 1) (cons (atom 1) emptylist))")
        assert len(duplicate_list) == 2
        duplicate_set = run("(insert (atom 1) (insert (atom 1) emptyset))")
        assert len(duplicate_set) == 1

    def test_lists_can_be_disabled(self):
        limits = EvaluationLimits(allow_lists=False)
        with pytest.raises(SRLRuntimeError):
            run_expression(parse_expression("emptylist"), limits=limits)


class TestInstrumentation:
    def test_step_limit(self):
        program = Program(main=parse_expression(
            "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        ))
        evaluator = Evaluator(program, EvaluationLimits(max_steps=5))
        with pytest.raises(ResourceLimitExceeded):
            evaluator.run({"S": make_set(*(Atom(i) for i in range(50)))})

    def test_insert_counting(self):
        program = Program(main=parse_expression(
            "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        ))
        evaluator = Evaluator(program)
        evaluator.run({"S": make_set(*(Atom(i) for i in range(10)))})
        assert evaluator.stats.inserts == 10
        assert evaluator.stats.set_reduce_iterations == 10
        assert evaluator.stats.max_set_size == 10

    def test_set_size_limit(self):
        program = Program(main=parse_expression(
            "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        ))
        evaluator = Evaluator(program, EvaluationLimits(max_set_size=3))
        with pytest.raises(ResourceLimitExceeded):
            evaluator.run({"S": make_set(*(Atom(i) for i in range(10)))})

    def test_stats_as_dict(self):
        evaluator = Evaluator(Program(main=parse_expression("true")))
        evaluator.run({})
        assert evaluator.stats.as_dict()["steps"] >= 1


class TestAtomOrderPermutation:
    def test_choose_respects_permuted_order(self):
        s = make_set(Atom(0), Atom(1), Atom(2))
        expr = parse_expression("(choose S)")
        # Natural order: minimum is atom 0.
        assert run_expression(expr, {"S": s}) == Atom(0)
        # Under the reversed order, atom 2 comes first.
        assert run_expression(expr, {"S": s}, atom_order=(2, 1, 0)) == Atom(2)

    def test_order_independent_result_is_stable(self):
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        expr = parse_expression(text)
        s = make_set(Atom(0), Atom(1), Atom(2))
        natural = run_expression(expr, {"S": s})
        permuted = run_expression(expr, {"S": s}, atom_order=(2, 0, 1))
        assert natural == permuted
