"""Direct unit tests for the engine's quantifier binding kernels and the
CLI's JSON database reader.

The binding kernels promise *mutate-and-restore*: the quantified variable
is rebound in place on the caller's assignment dict and restored afterwards
— including when evaluation raises — and a variable that was unbound going
in is unbound (not bound-to-garbage) coming out.  These invariants carry
the whole logic layer's correctness and had no direct tests before.
"""

from __future__ import annotations

import pytest

from repro.core.engine import (
    count_bindings,
    database_from_json,
    exists_binding,
    forall_binding,
)
from repro.core.errors import SRLRuntimeError
from repro.core.values import Atom, SRLList, SRLSet, SRLTuple


class Boom(RuntimeError):
    pass


def _raise_at(trigger):
    def evaluate(body, assignment):
        if assignment["x"] == trigger:
            raise Boom(trigger)
        return body(assignment) if callable(body) else bool(body)
    return evaluate


class TestBindingKernels:
    def test_exists_finds_a_witness_and_restores(self):
        assignment = {"x": 99, "other": 7}
        found = exists_binding(range(5), assignment, "x",
                               lambda body, a: a["x"] == 3, None)
        assert found
        assert assignment == {"x": 99, "other": 7}

    def test_exists_restores_an_unbound_variable(self):
        assignment = {"other": 7}
        assert not exists_binding(range(3), assignment, "x",
                                  lambda body, a: False, None)
        assert assignment == {"other": 7}   # no leftover binding

    def test_forall_short_circuits_and_restores(self):
        assignment = {"x": "before"}
        seen = []

        def evaluate(body, a):
            seen.append(a["x"])
            return a["x"] < 2

        assert not forall_binding(range(5), assignment, "x", evaluate, None)
        assert seen == [0, 1, 2]            # stopped at the counterexample
        assert assignment == {"x": "before"}

    def test_count_counts_witnesses_and_restores(self):
        assignment = {}
        count = count_bindings(range(10), assignment, "x",
                               lambda body, a: a["x"] % 3 == 0, None)
        assert count == 4                    # 0, 3, 6, 9
        assert assignment == {}

    # ``body`` keeps each kernel iterating up to the raising binding:
    # exists must keep missing, forall must keep holding.
    @pytest.mark.parametrize("kernel,body", [
        (exists_binding, False), (forall_binding, True), (count_bindings, False),
    ])
    def test_restore_on_exception_with_prior_binding(self, kernel, body):
        assignment = {"x": "saved", "y": 1}
        with pytest.raises(Boom):
            kernel(range(5), assignment, "x", _raise_at(2), body)
        assert assignment == {"x": "saved", "y": 1}

    @pytest.mark.parametrize("kernel,body", [
        (exists_binding, False), (forall_binding, True), (count_bindings, False),
    ])
    def test_restore_on_exception_without_prior_binding(self, kernel, body):
        assignment = {"y": 1}
        with pytest.raises(Boom):
            kernel(range(5), assignment, "x", _raise_at(0), body)
        assert assignment == {"y": 1}        # "x" did not leak

    def test_rebinding_is_in_place(self):
        # The kernels must not copy the dict per binding: the evaluator sees
        # the *same* mapping object on every probe.
        assignment = {}
        seen_ids = set()

        def evaluate(body, a):
            seen_ids.add(id(a))
            return False

        exists_binding(range(4), assignment, "x", evaluate, None)
        assert seen_ids == {id(assignment)}


class TestDatabaseFromJson:
    def test_untagged_depths(self):
        # Depth 0 arrays are sets, depth >= 1 arrays are tuples — the common
        # relation shape {"EDGES": [[0, 1], [1, 2]]}.
        database = database_from_json({
            "EDGES": [[0, 1], [1, 2]],
            "FLAG": True,
            "POINT": 3,
        })
        assert database.lookup("EDGES") == SRLSet([
            SRLTuple([Atom(0), Atom(1)]), SRLTuple([Atom(1), Atom(2)]),
        ])
        assert database.lookup("FLAG") is True
        assert database.lookup("POINT") == Atom(3)

    def test_untagged_deep_nesting_stays_tuples(self):
        database = database_from_json({"NESTED": [[[0, 1], 2]]})
        assert database.lookup("NESTED") == SRLSet([
            SRLTuple([SRLTuple([Atom(0), Atom(1)]), Atom(2)]),
        ])

    def test_tagged_values(self):
        database = database_from_json({
            "A": {"atom": 3},
            "NAMED": {"atom": 4, "name": "seven"},
            "N": {"nat": 7},
            "S": {"set": [{"set": [1]}, 2]},
            "T": {"tuple": [1, {"list": [2]}]},
        })
        assert database.lookup("A") == Atom(3)
        named = database.lookup("NAMED")
        assert named == Atom(4) and named.name == "seven"
        assert database.lookup("N") == 7
        assert database.lookup("S") == SRLSet([SRLSet([Atom(1)]), Atom(2)])
        assert database.lookup("T") == SRLTuple([Atom(1), SRLList([Atom(2)])])

    def test_top_level_must_be_an_object(self):
        with pytest.raises(SRLRuntimeError, match="must be an object"):
            database_from_json([1, 2, 3])

    def test_unknown_tag_is_reported(self):
        with pytest.raises(SRLRuntimeError, match="cannot read an SRL value"):
            database_from_json({"x": {"unknown": 1}})

    def test_multi_key_object_is_rejected(self):
        # Two tags in one object is ambiguous (only atom+name is allowed).
        with pytest.raises(SRLRuntimeError):
            database_from_json({"x": {"set": [], "list": []}})

    @pytest.mark.parametrize("bad", [
        {"atom": "three"},           # non-numeric atom rank
        {"nat": "seven"},            # non-numeric natural
        {"set": 5},                  # tagged set over a non-array
        {"tuple": 5},                # tagged tuple over a non-array
    ])
    def test_malformed_tagged_values_surface_as_srl_errors(self, bad):
        with pytest.raises(SRLRuntimeError, match="'x'"):
            database_from_json({"x": bad})

    def test_fractional_number_is_rejected(self):
        with pytest.raises(SRLRuntimeError):
            database_from_json({"x": 1.5})
