"""Unit tests for the resource-governance layer (PR 6).

:class:`Budget` is the declarative contract, :class:`Governor` the
per-run enforcement object; every violation must surface as the right
:class:`ResourceLimitExceeded` subclass carrying the partial stats, and
the amortized ``tick`` must only pay for the clock at the configured
interval.
"""

from __future__ import annotations

import time

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    EvaluationCancelled,
    FixpointRoundLimitExceeded,
    MemoLimitExceeded,
    ResourceLimitExceeded,
    RowLimitExceeded,
    SRLRuntimeError,
)
from repro.core.governor import Budget, CancelToken, DegradationEvent, Governor


class TestBudget:
    def test_default_budget_is_unlimited(self):
        assert Budget().unlimited

    @pytest.mark.parametrize("field", [
        "deadline_seconds", "max_rows_materialized",
        "max_fixpoint_rounds", "max_memo_entries",
    ])
    def test_any_cap_makes_it_limited(self, field):
        assert not Budget(**{field: 5}).unlimited

    def test_a_cancel_token_makes_it_limited(self):
        assert not Budget(cancel_token=CancelToken()).unlimited

    @pytest.mark.parametrize("field", [
        "deadline_seconds", "max_rows_materialized",
        "max_fixpoint_rounds", "max_memo_entries",
    ])
    def test_negative_caps_are_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            Budget(**{field: -1})

    def test_check_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="check_interval"):
            Budget(check_interval=0)

    def test_budgets_are_frozen_and_reusable(self):
        budget = Budget(max_fixpoint_rounds=1)
        with pytest.raises(Exception):
            budget.max_fixpoint_rounds = 2  # type: ignore[misc]
        # Each start() mints independent counters.
        first, second = budget.start(), budget.start()
        first.note_round()
        second.note_round()  # would raise if the counter were shared


class TestGovernor:
    def test_unlimited_governor_never_raises(self):
        governor = Budget().start()
        for _ in range(5000):
            governor.tick()
        governor.note_rows(10**9)
        governor.check_rows_ahead(10**9)
        governor.note_round()
        governor.check_memo(10**9)
        governor.check_time()

    def test_deadline_raises_deadline_exceeded(self):
        governor = Budget(deadline_seconds=0.0).start()
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded):
            governor.check_time()

    def test_cancellation_beats_the_deadline(self):
        token = CancelToken()
        governor = Budget(deadline_seconds=0.0, cancel_token=token).start()
        token.cancel()
        time.sleep(0.002)
        with pytest.raises(EvaluationCancelled):
            governor.check_time()

    def test_tick_amortizes_the_clock_check(self):
        token = CancelToken()
        token.cancel()
        governor = Budget(cancel_token=token, check_interval=4).start()
        for _ in range(3):
            governor.tick()  # under the interval: no check yet
        with pytest.raises(EvaluationCancelled):
            governor.tick()

    def test_tick_weight_counts_as_many_steps(self):
        token = CancelToken()
        token.cancel()
        governor = Budget(cancel_token=token, check_interval=100).start()
        with pytest.raises(EvaluationCancelled):
            governor.tick(weight=100)

    def test_row_accounting(self):
        governor = Budget(max_rows_materialized=10).start()
        governor.note_rows(6)
        governor.note_rows(4)
        assert governor.rows_materialized == 10
        with pytest.raises(RowLimitExceeded) as info:
            governor.note_rows(1)
        assert info.value.resource == "rows_materialized"
        assert info.value.limit == 10
        assert info.value.used == 11

    def test_check_rows_ahead_refuses_before_allocating(self):
        governor = Budget(max_rows_materialized=100).start()
        governor.note_rows(50)
        with pytest.raises(RowLimitExceeded):
            governor.check_rows_ahead(51)
        governor.check_rows_ahead(50)  # exactly at the limit is fine
        assert governor.rows_materialized == 50  # ahead-checks don't account

    def test_round_accounting(self):
        governor = Budget(max_fixpoint_rounds=2).start()
        governor.note_round()
        governor.note_round()
        assert governor.fixpoint_rounds == 2
        with pytest.raises(FixpointRoundLimitExceeded):
            governor.note_round()

    def test_memo_limit(self):
        governor = Budget(max_memo_entries=3).start()
        governor.check_memo(3)
        with pytest.raises(MemoLimitExceeded):
            governor.check_memo(4)

    def test_partial_stats_ride_on_the_error(self):
        stats = {"rows": 7}
        governor = Budget(max_fixpoint_rounds=0).start(stats)
        with pytest.raises(FixpointRoundLimitExceeded) as info:
            governor.note_round()
        assert info.value.stats is stats

    def test_every_limit_error_is_a_resource_limit(self):
        for cls in (DeadlineExceeded, EvaluationCancelled, RowLimitExceeded,
                    FixpointRoundLimitExceeded, MemoLimitExceeded):
            assert issubclass(cls, ResourceLimitExceeded)
            assert issubclass(cls, SRLRuntimeError)

    def test_governor_repr_via_budget_start(self):
        assert isinstance(Budget().start(), Governor)


class TestCancelToken:
    def test_one_shot_flag(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel()
        assert token.cancelled
        token.cancel()  # idempotent
        assert token.cancelled

    def test_shared_token_stops_every_governor(self):
        token = CancelToken()
        first = Budget(cancel_token=token).start()
        second = Budget(cancel_token=token).start()
        token.cancel()
        for governor in (first, second):
            with pytest.raises(EvaluationCancelled):
                governor.check_time()


class TestDegradationEvent:
    def test_events_are_frozen_records(self):
        event = DegradationEvent("optimize", "raw-plan", "ValueError('x')")
        assert (event.stage, event.fallback) == ("optimize", "raw-plan")
        with pytest.raises(Exception):
            event.stage = "plan"  # type: ignore[misc]
