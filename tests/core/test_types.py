"""Tests for the SRL type system (Definition 2.2, Proposition 3.8 measures)."""

from __future__ import annotations

import pytest

from repro.core.errors import SRLTypeError
from repro.core.types import (
    ATOM,
    BOOL,
    NAT,
    SetType,
    TypeVar,
    apply_substitution,
    fresh_type_var,
    free_type_vars,
    is_ground,
    list_of,
    list_height,
    max_tuple_width,
    set_height,
    set_of,
    tuple_nesting,
    tuple_of,
    tuple_width,
    unify,
)


class TestSetHeight:
    def test_base_types_have_height_zero(self):
        assert set_height(BOOL) == 0
        assert set_height(ATOM) == 0
        assert set_height(NAT) == 0

    def test_definition_2_2(self):
        assert set_height(set_of(ATOM)) == 1
        assert set_height(set_of(set_of(ATOM))) == 2

    def test_tuple_takes_max_of_components(self):
        t = tuple_of(ATOM, set_of(ATOM))
        assert set_height(t) == 1
        assert set_height(set_of(t)) == 2

    def test_list_does_not_add_set_height(self):
        assert set_height(list_of(set_of(ATOM))) == 1

    def test_list_height(self):
        assert list_height(list_of(ATOM)) == 1
        assert list_height(list_of(list_of(ATOM))) == 2
        assert list_height(set_of(ATOM)) == 0


class TestWidths:
    def test_tuple_width(self):
        assert tuple_width(tuple_of(ATOM, ATOM, ATOM)) == 3
        assert tuple_width(ATOM) == 1

    def test_tuple_nesting(self):
        assert tuple_nesting(ATOM) == 0
        assert tuple_nesting(tuple_of(ATOM, ATOM)) == 1
        assert tuple_nesting(tuple_of(tuple_of(ATOM, ATOM), ATOM)) == 2

    def test_max_tuple_width_recurses(self):
        t = set_of(tuple_of(ATOM, tuple_of(ATOM, ATOM, ATOM, ATOM)))
        assert max_tuple_width(t) == 4


class TestUnification:
    def test_identical_types_unify_with_empty_substitution(self):
        assert unify(set_of(ATOM), set_of(ATOM)) == {}

    def test_variable_binds(self):
        alpha = fresh_type_var()
        subst = unify(SetType(alpha), set_of(ATOM))
        assert apply_substitution(alpha, subst) == ATOM

    def test_mismatched_types_raise(self):
        with pytest.raises(SRLTypeError):
            unify(BOOL, ATOM)

    def test_mismatched_tuple_widths_raise(self):
        with pytest.raises(SRLTypeError):
            unify(tuple_of(ATOM, ATOM), tuple_of(ATOM))

    def test_occurs_check(self):
        alpha = fresh_type_var()
        with pytest.raises(SRLTypeError):
            unify(alpha, set_of(alpha))

    def test_substitution_chains_are_followed(self):
        a, b = fresh_type_var(), fresh_type_var()
        subst = unify(a, b)
        subst = unify(b, ATOM, subst)
        assert apply_substitution(a, subst) == ATOM

    def test_nested_unification(self):
        alpha = fresh_type_var()
        left = set_of(tuple_of(alpha, BOOL))
        right = set_of(tuple_of(ATOM, BOOL))
        subst = unify(left, right)
        assert apply_substitution(left, subst) == right


class TestGroundness:
    def test_is_ground(self):
        assert is_ground(set_of(tuple_of(ATOM, BOOL)))
        assert not is_ground(set_of(fresh_type_var()))

    def test_free_type_vars(self):
        alpha = fresh_type_var()
        assert free_type_vars(set_of(tuple_of(alpha, ATOM))) == {alpha.name}

    def test_type_rendering(self):
        assert str(set_of(tuple_of(ATOM, BOOL))) == "set([atom, bool])"
        assert str(TypeVar("a1")) == "'a1"
