"""Tests for the Fact 2.4 standard library (all of it written in SRL)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Atom,
    Evaluator,
    make_set,
    make_tuple,
    run_expression,
    standard_library,
    with_standard_library,
)
from repro.core import builders as b
from repro.core.stdlib import (
    forall_expr,
    forsome_expr,
    join_expr,
    product_expr,
    project_expr,
    select_expr,
    singleton_expr,
)
from repro.core.values import value_to_python

ranks = st.integers(min_value=0, max_value=12)
rank_sets = st.frozensets(ranks, max_size=8)


def atom_set(ranks_):
    return make_set(*(Atom(r) for r in ranks_))


def run_with_lib(expr, **bindings):
    return run_expression(expr, bindings, program=standard_library())


class TestBooleans:
    @pytest.mark.parametrize("a", [True, False])
    def test_not(self, evaluator, a):
        assert evaluator.call("not", a) is (not a)

    @pytest.mark.parametrize("a", [True, False])
    @pytest.mark.parametrize("c", [True, False])
    def test_and_or(self, evaluator, a, c):
        assert evaluator.call("and", a, c) is (a and c)
        assert evaluator.call("or", a, c) is (a or c)


class TestSetOperations:
    @given(rank_sets, rank_sets)
    def test_union_matches_python(self, xs, ys):
        result = Evaluator(standard_library()).call("union", atom_set(xs), atom_set(ys))
        assert value_to_python(result) == frozenset(xs | ys)

    @given(rank_sets, rank_sets)
    def test_intersection_matches_python(self, xs, ys):
        result = Evaluator(standard_library()).call("intersection", atom_set(xs), atom_set(ys))
        assert value_to_python(result) == frozenset(xs & ys)

    @given(rank_sets, rank_sets)
    def test_difference_matches_python(self, xs, ys):
        result = Evaluator(standard_library()).call("difference", atom_set(xs), atom_set(ys))
        assert value_to_python(result) == frozenset(xs - ys)

    @given(rank_sets, ranks)
    def test_member_matches_python(self, xs, x):
        result = Evaluator(standard_library()).call("member", Atom(x), atom_set(xs))
        assert result is (x in xs)

    @given(rank_sets, rank_sets)
    def test_subset_matches_python(self, xs, ys):
        result = Evaluator(standard_library()).call("subset", atom_set(xs), atom_set(ys))
        assert result is (xs <= ys)

    def test_is_empty_and_singleton(self, evaluator):
        assert evaluator.call("is-empty", make_set()) is True
        assert evaluator.call("is-empty", make_set(Atom(1))) is False
        assert evaluator.call("singleton", Atom(4)) == make_set(Atom(4))

    def test_union_with_empty_is_identity(self, evaluator, small_sets):
        s, _ = small_sets
        assert evaluator.call("union", s, make_set()) == s
        assert evaluator.call("union", make_set(), s) == s


class TestQuantifierMacros:
    @given(rank_sets)
    def test_forall_threshold(self, xs):
        expr = forall_expr(b.var("S"), lambda x, e: b.leq(x, b.atom(6)))
        expected = all(r <= 6 for r in xs)
        assert run_with_lib(expr, S=atom_set(xs)) is expected

    @given(rank_sets)
    def test_forsome_threshold(self, xs):
        expr = forsome_expr(b.var("S"), lambda x, e: b.leq(b.atom(10), x))
        expected = any(r >= 10 for r in xs)
        assert run_with_lib(expr, S=atom_set(xs)) is expected

    def test_forall_is_vacuously_true_on_empty(self):
        expr = forall_expr(b.var("S"), lambda x, e: b.false())
        assert run_with_lib(expr, S=make_set()) is True

    def test_forsome_is_false_on_empty(self):
        expr = forsome_expr(b.var("S"), lambda x, e: b.true())
        assert run_with_lib(expr, S=make_set()) is False

    def test_extra_is_available_to_the_predicate(self):
        # forsome x in S . x = pivot, with the pivot passed through extra.
        expr = forsome_expr(b.var("S"), lambda x, e: b.eq(x, e), extra=b.var("pivot"))
        assert run_with_lib(expr, S=atom_set({1, 2, 3}), pivot=Atom(2)) is True
        assert run_with_lib(expr, S=atom_set({1, 2, 3}), pivot=Atom(9)) is False


class TestRelationalMacros:
    def pairs(self, *pairs_):
        return make_set(*(make_tuple(Atom(a), Atom(bb)) for a, bb in pairs_))

    def test_select(self):
        expr = select_expr(b.var("R"), lambda x, e: b.eq(b.sel(1, x), b.atom(1)))
        result = run_with_lib(expr, R=self.pairs((1, 2), (2, 3), (1, 4)))
        assert value_to_python(result) == frozenset({(1, 2), (1, 4)})

    def test_project_single_column_gives_atoms(self):
        expr = project_expr(b.var("R"), [2])
        result = run_with_lib(expr, R=self.pairs((1, 2), (2, 3), (1, 2)))
        assert value_to_python(result) == frozenset({2, 3})

    def test_project_multiple_columns_gives_tuples(self):
        expr = project_expr(b.var("R"), [2, 1])
        result = run_with_lib(expr, R=self.pairs((1, 2), (2, 3)))
        assert value_to_python(result) == frozenset({(2, 1), (3, 2)})

    def test_project_requires_indices(self):
        with pytest.raises(ValueError):
            project_expr(b.var("R"), [])

    def test_product(self):
        expr = product_expr(b.var("A"), b.var("B"))
        result = run_with_lib(expr, A=atom_set({1, 2}), B=atom_set({5}))
        assert value_to_python(result) == frozenset({(1, 5), (2, 5)})

    def test_join_composes_relations(self):
        # R join R on R.2 = R.1 is relation composition.
        expr = join_expr(
            b.var("R"), b.var("R"),
            condition=lambda t1, t2: b.eq(b.sel(2, t1), b.sel(1, t2)),
            output=lambda t1, t2: b.tup(b.sel(1, t1), b.sel(2, t2)),
        )
        result = run_with_lib(expr, R=self.pairs((1, 2), (2, 3), (3, 4)))
        assert value_to_python(result) == frozenset({(1, 3), (2, 4)})

    @given(st.frozensets(st.tuples(ranks, ranks), max_size=6),
           st.frozensets(st.tuples(ranks, ranks), max_size=6))
    def test_join_matches_python_composition(self, r_pairs, s_pairs):
        expr = join_expr(
            b.var("R"), b.var("S"),
            condition=lambda t1, t2: b.eq(b.sel(2, t1), b.sel(1, t2)),
            output=lambda t1, t2: b.tup(b.sel(1, t1), b.sel(2, t2)),
        )
        result = run_with_lib(expr, R=self.pairs(*r_pairs), S=self.pairs(*s_pairs))
        expected = frozenset((a, d) for a, bb in r_pairs for c, d in s_pairs if bb == c)
        assert value_to_python(result) == expected

    def test_singleton_expr(self):
        assert run_with_lib(singleton_expr(b.atom(3))) == make_set(Atom(3))


class TestWithStandardLibrary:
    def test_existing_definitions_are_not_overwritten(self):
        program = b.program(b.define("union", ["S", "T"], b.var("S")))
        with_standard_library(program)
        # The user's union (projection onto the first argument) is preserved.
        assert program.definitions["union"].body == b.var("S")
        assert "member" in program.definitions

    def test_library_is_self_contained(self, evaluator, small_sets):
        s, t = small_sets
        # Every definition can be invoked without extra context.
        assert evaluator.call("union", s, t) is not None
        assert evaluator.call("subset", s, t) in (True, False)
