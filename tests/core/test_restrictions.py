"""Tests for the language-restriction checkers (SRL, BASRL, SRFO, LRL...)."""

from __future__ import annotations

import pytest

from repro.core import (
    ATOM,
    NAT,
    Program,
    RestrictionViolation,
    parse_expression,
    set_of,
    standard_library,
)
from repro.core.restrictions import (
    ALL_RESTRICTIONS,
    BASRL,
    LRL,
    SRFO_DTC,
    SRFO_TC,
    SRL,
    SRL_NEW,
    UNRESTRICTED_SRL,
    strictest_restriction,
)


COPY = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
MIN_TRACKER = """(set-reduce S (lambda (x e) x)
                   (lambda (a r) (if (<= a (sel 1 r)) (tuple a) r))
                   (tuple (atom 0)) emptyset)"""


def program_of(text: str) -> Program:
    return Program(main=parse_expression(text))


class TestSRL:
    def test_copy_program_is_in_srl(self):
        assert SRL.is_member(program_of(COPY), {"S": set_of(ATOM)})

    def test_set_of_sets_input_is_rejected(self):
        violations = SRL.check(program_of(COPY), {"S": set_of(set_of(ATOM))})
        assert violations
        assert any("set-height" in v for v in violations)

    def test_new_is_rejected(self):
        violations = SRL.check(program_of("(insert (new S) S)"), {"S": set_of(ATOM)})
        assert any("new" in v for v in violations)

    def test_lists_are_rejected(self):
        violations = SRL.check(program_of("(cons (atom 1) emptylist)"))
        assert any("lists" in v for v in violations)

    def test_set_of_naturals_is_rejected(self):
        violations = SRL.check(program_of("(insert (nat 1) N)"), {"N": set_of(NAT)})
        assert any("naturals" in v for v in violations)

    def test_assert_member_raises_with_details(self):
        with pytest.raises(RestrictionViolation) as excinfo:
            SRL.assert_member(program_of("(insert (new S) S)"), {"S": set_of(ATOM)})
        assert excinfo.value.restriction == "SRL"
        assert excinfo.value.violations

    def test_metadata(self):
        assert SRL.complexity_class == "P"
        assert "3.10" in SRL.paper_reference


class TestBASRL:
    def test_flat_accumulator_is_accepted(self):
        assert BASRL.is_member(program_of(MIN_TRACKER), {"S": set_of(ATOM)})

    def test_set_building_accumulator_is_rejected(self):
        violations = BASRL.check(program_of(COPY), {"S": set_of(ATOM)})
        assert any("accumulator" in v for v in violations)

    def test_syntactic_fallback_without_types(self):
        # Without input types BASRL falls back to a syntactic check: an
        # insert inside an accumulator body is flagged.
        violations = BASRL.check(program_of(COPY))
        assert violations

    def test_basrl_is_contained_in_srl(self):
        program = program_of(MIN_TRACKER)
        assert BASRL.is_member(program, {"S": set_of(ATOM)})
        assert SRL.is_member(program, {"S": set_of(ATOM)})


class TestExtensions:
    def test_srl_new_accepts_new(self):
        assert SRL_NEW.is_member(program_of("(insert (new S) S)"), {"S": set_of(ATOM)})

    def test_srl_new_rejects_lists(self):
        assert not SRL_NEW.is_member(program_of("(cons (atom 1) emptylist)"))

    def test_lrl_accepts_lists(self):
        text = "(list-reduce L (lambda (x e) x) (lambda (a r) (cons a r)) emptylist emptylist)"
        assert LRL.is_member(program_of(text))

    def test_lrl_rejects_new(self):
        assert not LRL.is_member(program_of("(new S)"))

    def test_unrestricted_accepts_everything(self):
        assert UNRESTRICTED_SRL.is_member(program_of("(insert (new S) S)"))
        assert UNRESTRICTED_SRL.is_member(program_of("(cons (atom 1) emptylist)"))


class TestSRFOFragments:
    def test_quantifier_only_program_is_in_both_fragments(self):
        program = standard_library()
        program.main = parse_expression("(forall D P)") if False else parse_expression(
            "(and (member (atom 1) S) (not (member (atom 2) S)))"
        )
        assert SRFO_TC.is_member(program, {"S": set_of(ATOM)})
        assert SRFO_DTC.is_member(program, {"S": set_of(ATOM)})

    def test_foreign_calls_are_flagged(self):
        program = Program(main=parse_expression("(mystery S)"))
        assert not SRFO_TC.is_member(program, {"S": set_of(ATOM)})
        assert not SRFO_DTC.is_member(program, {"S": set_of(ATOM)})

    def test_new_is_outside_the_fragments(self):
        program = Program(main=parse_expression("(new S)"))
        assert not SRFO_TC.is_member(program, {"S": set_of(ATOM)})


class TestStrictestRestriction:
    def test_flat_program_lands_in_basrl(self):
        assert strictest_restriction(program_of(MIN_TRACKER), {"S": set_of(ATOM)}) is BASRL

    def test_copy_program_lands_in_srl(self):
        assert strictest_restriction(program_of(COPY), {"S": set_of(ATOM)}) is SRL

    def test_new_program_lands_in_srl_new(self):
        assert strictest_restriction(
            program_of("(insert (new S) S)"), {"S": set_of(ATOM)}
        ) is SRL_NEW

    def test_list_program_lands_in_lrl(self):
        text = "(cons (atom 1) emptylist)"
        assert strictest_restriction(program_of(text)) is LRL

    def test_every_restriction_reports_a_class(self):
        for restriction in ALL_RESTRICTIONS:
            assert restriction.complexity_class
            assert restriction.paper_reference
