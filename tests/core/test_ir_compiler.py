"""Unit tests for the compilation pipeline: lowering, folding, codegen,
instrumentation parity and the Session facade."""

from __future__ import annotations

import pytest

from repro.core import (
    Atom,
    EvaluationLimits,
    Session,
    compile_program,
    make_set,
    parse_expression,
    parse_program,
    run_expression,
    run_program,
    standard_library,
)
from repro.core import builders as b
from repro.core.ast import Program
from repro.core.errors import ResourceLimitExceeded, SRLNameError, SRLRuntimeError
from repro.core.ir import Op, count_instructions, lower_expression, lower_program


def _main_ir(expr_text: str, program: Program | None = None):
    return lower_expression(parse_expression(expr_text), program).main


class TestLowering:
    def test_constants_fold_to_a_single_instruction(self):
        block = _main_ir("(= (sel 1 (tuple (atom 1) (atom 2))) (atom 1))").block
        assert [i.op for i in block.instrs] == [Op.CONST]
        assert block.instrs[0].args == (True,)

    def test_constant_condition_selects_one_branch(self):
        block = _main_ir("(if true (atom 1) (insert (atom 0) emptyset))").block
        assert [i.op for i in block.instrs] == [Op.CONST]
        assert block.instrs[0].args == (Atom(1),)

    def test_insert_is_never_folded(self):
        # Folding insert would change the instrumented `inserts` counter.
        block = _main_ir("(insert (atom 1) emptyset)").block
        assert Op.INSERT in [i.op for i in block.instrs]

    def test_lesseq_is_never_folded(self):
        # `<=` over atoms depends on the session's atom_order.
        block = _main_ir("(<= (atom 1) (atom 2))").block
        assert Op.LESSEQ in [i.op for i in block.instrs]

    def test_variables_resolve_to_slots_or_database_loads(self):
        program = parse_program("(define (f x) x) (f S)")
        ir = lower_program(program)
        # `x` in f's body is a parameter slot: no LOAD_DB.
        assert all(i.op is not Op.LOAD_DB for i in ir.functions["f"].block.instrs)
        # `S` in main is a database load.
        assert any(i.op is Op.LOAD_DB and i.args == ("S",)
                   for i in ir.main.block.instrs)

    def test_lambda_scope_sees_only_its_own_parameters(self):
        # The outer function's parameter is *not* visible inside the lambda;
        # the interpreter resolves it against the database instead.
        program = parse_program(
            "(define (f x) (set-reduce S (lambda (y e) x) (lambda (a r) r)"
            " emptyset emptyset)) (f (atom 0))"
        )
        ir = lower_program(program)
        reduce_instr = next(i for i in ir.functions["f"].block.instrs
                            if i.op is Op.REDUCE)
        app_block = reduce_instr.args[4]
        assert any(i.op is Op.LOAD_DB and i.args == ("x",)
                   for i in app_block.instrs)

    def test_unknown_call_lowers_to_a_lazy_raise(self):
        block = _main_ir("(no-such-function (atom 1))").block
        raises = [i for i in block.instrs if i.op is Op.RAISE]
        assert raises and raises[0].args[0] == "name"

    def test_recursive_definitions_are_guarded(self):
        program = parse_program("(define (f x) (f x)) (f (atom 0))")
        ir = lower_program(program)
        assert ir.functions["f"].guarded
        mutual = parse_program(
            "(define (f x) (g x)) (define (g x) (f x)) (f (atom 0))"
        )
        ir = lower_program(mutual)
        assert ir.functions["f"].guarded and ir.functions["g"].guarded

    def test_non_recursive_definitions_are_not_guarded(self):
        ir = lower_program(standard_library())
        assert not any(fn.guarded for fn in ir.functions.values())

    def test_count_instructions_covers_nested_blocks(self):
        block = _main_ir(
            "(set-reduce S (lambda (x e) (if (= x e) x e))"
            " (lambda (a r) (insert a r)) emptyset (atom 0))"
        ).block
        assert count_instructions(block) > 5


class TestCompiledSemantics:
    def test_dead_branch_errors_stay_dead(self):
        # The interpreter only rejects an unknown callee when the call is
        # reached; compiled code must match.
        expr = parse_expression("(if E (no-such-fn) (atom 1))")
        for flag, expected in ((False, Atom(1)),):
            value = run_expression(expr, {"E": flag}, backend="compiled")
            assert value == expected
        with pytest.raises(SRLNameError):
            run_expression(expr, {"E": True}, backend="compiled")

    def test_arity_mismatch_matches_the_interpreter(self):
        program = parse_program("(define (f x) x) (f (atom 1) (atom 2))")
        with pytest.raises(SRLRuntimeError, match="expects 1 arguments, got 2"):
            run_program(program, backend="compiled")

    def test_recursion_is_rejected_at_runtime(self):
        program = parse_program("(define (f x) (f x)) (f (atom 0))")
        with pytest.raises(SRLRuntimeError, match="recursive call of f"):
            run_program(program, backend="compiled")

    def test_recursive_call_in_a_dead_branch_is_allowed(self):
        program = parse_program(
            "(define (f x) (if (= x (atom 0)) (atom 7) (f x))) (f (atom 0))"
        )
        assert run_program(program, backend="compiled") == Atom(7)

    def test_limits_are_enforced(self):
        grow = parse_expression(
            "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r))"
            " emptyset emptyset)"
        )
        database = {"S": make_set(*(Atom(i) for i in range(6)))}
        with pytest.raises(ResourceLimitExceeded):
            run_expression(grow, database, backend="compiled",
                           limits=EvaluationLimits(max_inserts=3))
        with pytest.raises(ResourceLimitExceeded):
            run_expression(grow, database, backend="compiled",
                           limits=EvaluationLimits(max_set_size=4))
        with pytest.raises(ResourceLimitExceeded):
            run_expression(grow, database, backend="compiled",
                           limits=EvaluationLimits(max_steps=2))

    def test_allow_new_and_allow_lists_gates(self):
        with pytest.raises(SRLRuntimeError, match="invented values"):
            run_expression(parse_expression("(new emptyset)"),
                           backend="compiled",
                           limits=EvaluationLimits(allow_new=False))
        with pytest.raises(SRLRuntimeError, match="disabled"):
            run_expression(parse_expression("emptylist"),
                           backend="compiled",
                           limits=EvaluationLimits(allow_lists=False))

    def test_atom_order_controls_choose_and_rest(self):
        s = make_set(Atom(0), Atom(1), Atom(2))
        expr = parse_expression("(choose S)")
        assert run_expression(expr, {"S": s}, backend="compiled") == Atom(0)
        assert run_expression(expr, {"S": s}, backend="compiled",
                              atom_order=(2, 1, 0)) == Atom(2)

    def test_compiled_program_reports_source(self):
        compiled = compile_program(parse_program("(insert (atom 1) emptyset)"))
        assert "rt.insert" in compiled.source

    def test_deeply_nested_reduces_fall_back_to_the_interpreter(self):
        # CPython caps statically nested blocks at 20; a Session runs
        # uncompilable programs on the interpreter instead of erroring.
        from repro.core.errors import SRLCompilationError

        # Only reduces inside lambda *bodies* nest loop blocks (a reduce in
        # source position emits sequentially), so nest through the app.
        text = "x"
        for _ in range(25):
            text = (f"(set-reduce S (lambda (x e) {text})"
                    " (lambda (a r) (insert a r)) emptyset emptyset)")
        program = parse_program(text)
        with pytest.raises(SRLCompilationError):
            compile_program(program)
        database = {"S": make_set(Atom(0))}
        session = Session(program)
        interp_value = Session(program, backend="interp").run(database)
        assert session.run(database) == interp_value
        # The failed compile is cached: a second run does not retry it.
        assert session._compiled is None
        assert session.run(database) == interp_value


class TestSession:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Session(backend="jit")

    def test_recompiles_when_the_program_changes(self):
        program = Program()
        program.main = b.atom(1)
        session = Session(program)
        assert session.run() == Atom(1)
        program.define(b.define("seven", [], b.atom(7)))
        program.main = b.call("seven")
        assert session.run() == Atom(7)

    def test_stats_reflect_the_most_recent_run(self):
        session = Session(standard_library())
        s, t = make_set(Atom(1), Atom(2)), make_set(Atom(3))
        session.call("union", s, t)
        first = session.stats.inserts
        session.call("union", make_set(), make_set())
        assert session.stats.inserts == 0 and first == 2

    def test_run_with_stats(self):
        session = Session(parse_program("(insert (atom 1) emptyset)"))
        value, stats = session.run_with_stats()
        assert value == make_set(Atom(1)) and stats.inserts == 1

    def test_missing_main_raises_like_the_interpreter(self):
        for backend in ("compiled", "interp"):
            with pytest.raises(SRLRuntimeError, match="no main expression"):
                Session(Program(), backend=backend).run()


class TestDatabaseFromJson:
    def test_shapes(self):
        from repro.core.engine import database_from_json

        database = database_from_json({
            "S": [0, 1],
            "EDGES": [[0, 1], [1, 2]],
            "flag": True,
            "p": {"atom": 3, "name": "pivot"},
            "n": {"nat": 9},
            "deep": {"set": [{"set": [0]}]},
            "L": {"list": [0, 0, 1]},
        })
        assert database.lookup("S") == make_set(Atom(0), Atom(1))
        assert len(database.lookup("EDGES")) == 2
        assert database.lookup("flag") is True
        assert database.lookup("p") == Atom(3)
        assert database.lookup("n") == 9
        assert database.lookup("deep") == make_set(make_set(Atom(0)))
        assert len(database.lookup("L")) == 3

    def test_rejects_garbage(self):
        from repro.core.engine import database_from_json

        with pytest.raises(SRLRuntimeError):
            database_from_json({"x": {"unknown": 1}})
        with pytest.raises(SRLRuntimeError):
            database_from_json([1, 2])


class TestCLI:
    def test_end_to_end(self, tmp_path, capsys):
        from repro.__main__ import main

        source = tmp_path / "even.srl"
        source.write_text(
            "(set-reduce S (lambda (x e) x) (lambda (a r) (if r false true))"
            " true emptyset)"
        )
        db = tmp_path / "db.json"
        db.write_text('{"S": [0, 1, 2, 3]}')
        assert main([str(source), "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "result:      true" in out
        assert "restriction: BASRL" in out
        assert "set_reduce_iterations=4" in out

    def test_quiet_and_backends(self, tmp_path, capsys):
        from repro.__main__ import main

        source = tmp_path / "p.srl"
        source.write_text("(insert (atom 2) emptyset)")
        for backend in ("compiled", "interp", "reference"):
            assert main([str(source), "--backend", backend, "--quiet"]) == 0
            assert capsys.readouterr().out.strip() == "{d2}"

    def test_errors_are_reported(self, tmp_path, capsys):
        from repro.__main__ import main

        source = tmp_path / "bad.srl"
        source.write_text("(insert (atom 1)")
        assert main([str(source)]) == 2
        assert "error:" in capsys.readouterr().err
        assert main([str(tmp_path / "missing.srl")]) == 2
