"""Tests for Section 7: order dependence and its detection."""

from __future__ import annotations


from repro.core import (
    Atom,
    Program,
    make_set,
    make_tuple,
    parse_expression,
    standard_library,
    with_standard_library,
)
from repro.core import builders as b
from repro.core.order import (
    certify_order_independence,
    domain_size_of_database,
    probe_order_independence,
)
from repro.core.stdlib import forsome_expr, select_expr


def purple_first_program() -> Program:
    """The paper's order-dependent example: Purple(First(S)) — here,
    "the first element of S (in the implementation order) is atom 0"."""
    return Program(main=parse_expression("(= (choose S) (atom 0))"))


def copy_program() -> Program:
    return Program(main=parse_expression(
        "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
    ))


class TestDomainSize:
    def test_counts_max_rank_plus_one(self):
        database = {"S": make_set(Atom(0), Atom(4)), "T": make_set(make_tuple(Atom(7), Atom(1)))}
        assert domain_size_of_database(database) == 8

    def test_empty_database(self):
        assert domain_size_of_database({}) == 0


class TestEmpiricalTester:
    def test_order_independent_program_passes(self):
        report = probe_order_independence(copy_program(), {"S": make_set(Atom(0), Atom(3), Atom(5))})
        assert report.independent
        assert report.witness_permutation is None

    def test_order_dependent_program_is_caught(self):
        report = probe_order_independence(
            purple_first_program(), {"S": make_set(Atom(0), Atom(3), Atom(5))}, trials=50
        )
        assert not report.independent
        assert report.witness_permutation is not None
        assert report.witness_value != report.baseline

    def test_boolean_query_via_stdlib_is_independent(self):
        program = standard_library()
        program.main = parse_expression("(member (atom 3) S)")
        report = probe_order_independence(program, {"S": make_set(Atom(1), Atom(3))})
        assert report.independent

    def test_report_is_truthy_iff_independent(self):
        report = probe_order_independence(copy_program(), {"S": make_set(Atom(1))}, trials=3)
        assert bool(report)


class TestStructuralCertifier:
    def test_insert_accumulator_is_certified(self):
        assert certify_order_independence(copy_program()).certified

    def test_choose_blocks_certification(self):
        certificate = certify_order_independence(purple_first_program())
        assert not certificate.certified
        assert any("order" in reason for reason in certificate.reasons)

    def test_leq_blocks_certification(self):
        program = Program(main=parse_expression("(<= (atom 1) (atom 2))"))
        assert not certify_order_independence(program).certified

    def test_proper_call_accumulator_is_certified(self):
        program = with_standard_library(Program())
        program.main = forsome_expr(b.var("S"), lambda x, e: b.eq(x, b.atom(2)))
        assert certify_order_independence(program).certified

    def test_guarded_insert_accumulator_is_certified(self):
        program = with_standard_library(Program())
        program.main = select_expr(b.var("S"), lambda x, e: b.eq(x, b.atom(1)))
        assert certify_order_independence(program).certified

    def test_unreachable_definitions_are_ignored(self):
        # An unused order-sensitive helper must not block the certificate.
        program = Program(main=parse_expression("(= S S)"))
        program.define(b.define("first", ["S"], parse_expression("(choose S)")))
        assert certify_order_independence(program).certified

    def test_certifier_is_sound_on_the_empirical_tester(self):
        # Everything the structural check certifies must pass the empirical
        # test (the converse need not hold).
        programs = [copy_program(), with_standard_library(Program())]
        programs[1].main = forsome_expr(b.var("S"), lambda x, e: b.eq(x, b.atom(2)))
        database = {"S": make_set(Atom(0), Atom(2), Atom(4))}
        for program in programs:
            if certify_order_independence(program).certified:
                assert probe_order_independence(program, database, trials=10).independent

    def test_unknown_is_not_a_false_negative_proof(self):
        # `unknown` can coexist with actual independence: the accumulator
        # below always returns its second argument, which is independent but
        # not a recognised proper shape.
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) r) true emptyset)"
        program = Program(main=parse_expression(text))
        assert not certify_order_independence(program).certified
        report = probe_order_independence(program, {"S": make_set(Atom(1), Atom(2))})
        assert report.independent
