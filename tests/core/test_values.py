"""Unit and property tests for the runtime value layer."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import Atom, SRLList, SRLSet, SRLTuple, make_set, make_tuple
from repro.core.errors import SRLRuntimeError
from repro.core.values import (
    EMPTY_SET,
    is_value,
    python_to_value,
    value_key,
    value_size,
    value_sort,
    value_to_python,
)


atoms = st.integers(min_value=0, max_value=30).map(Atom)
atom_sets = st.lists(atoms, max_size=12).map(lambda xs: SRLSet(xs))
atom_pairs = st.tuples(atoms, atoms).map(lambda p: SRLTuple(p))
shallow_values = st.one_of(st.booleans(), atoms, atom_pairs, atom_sets)


class TestAtom:
    def test_equality_is_by_rank(self):
        assert Atom(3, "x") == Atom(3, "y")
        assert Atom(3) != Atom(4)

    def test_ordering_is_by_rank(self):
        assert Atom(1) < Atom(2)
        assert not Atom(2) < Atom(2)

    def test_str_uses_name_when_present(self):
        assert str(Atom(3)) == "d3"
        assert str(Atom(3, "alice")) == "alice"

    def test_hashable(self):
        assert len({Atom(1), Atom(1, "x"), Atom(2)}) == 2


class TestSRLTuple:
    def test_select_is_one_based(self):
        t = make_tuple(Atom(1), Atom(2), Atom(3))
        assert t.select(1) == Atom(1)
        assert t.select(3) == Atom(3)

    def test_select_out_of_range(self):
        t = make_tuple(Atom(1))
        with pytest.raises(SRLRuntimeError):
            t.select(2)
        with pytest.raises(SRLRuntimeError):
            t.select(0)

    def test_equality_structural(self):
        assert make_tuple(Atom(1), Atom(2)) == make_tuple(Atom(1), Atom(2))
        assert make_tuple(Atom(1), Atom(2)) != make_tuple(Atom(2), Atom(1))


class TestSRLSet:
    def test_duplicates_are_removed(self):
        s = SRLSet([Atom(1), Atom(1), Atom(2)])
        assert len(s) == 2

    def test_elements_are_canonically_ordered(self):
        s = SRLSet([Atom(3), Atom(1), Atom(2)])
        assert [a.rank for a in s.elements] == [1, 2, 3]

    def test_choose_returns_minimum(self):
        s = make_set(Atom(5), Atom(2), Atom(9))
        assert s.choose() == Atom(2)

    def test_rest_removes_minimum(self):
        s = make_set(Atom(5), Atom(2), Atom(9))
        assert s.rest() == make_set(Atom(5), Atom(9))

    def test_choose_rest_on_empty_raise(self):
        with pytest.raises(SRLRuntimeError):
            EMPTY_SET.choose()
        with pytest.raises(SRLRuntimeError):
            EMPTY_SET.rest()

    def test_insert_is_idempotent(self):
        s = make_set(Atom(1))
        assert s.insert(Atom(1)) == s
        assert len(s.insert(Atom(2))) == 2

    def test_insert_keeps_order(self):
        s = make_set(Atom(1), Atom(5))
        assert [a.rank for a in s.insert(Atom(3)).elements] == [1, 3, 5]

    def test_equality_ignores_construction_order(self):
        assert SRLSet([Atom(1), Atom(2)]) == SRLSet([Atom(2), Atom(1)])

    def test_sets_of_sets(self):
        inner1 = make_set(Atom(1))
        inner2 = make_set(Atom(2))
        outer = make_set(inner1, inner2)
        assert inner1 in outer
        assert make_set(Atom(3)) not in outer

    def test_union(self):
        assert make_set(Atom(1)).union(make_set(Atom(2))) == make_set(Atom(1), Atom(2))

    @given(st.lists(atoms, max_size=15))
    def test_set_behaves_like_frozenset(self, elements):
        srl = SRLSet(elements)
        reference = frozenset(a.rank for a in elements)
        assert len(srl) == len(reference)
        assert {a.rank for a in srl.elements} == reference

    @given(st.lists(atoms, max_size=15), atoms)
    def test_insert_matches_frozenset_union(self, elements, extra):
        srl = SRLSet(elements).insert(extra)
        reference = frozenset(a.rank for a in elements) | {extra.rank}
        assert {a.rank for a in srl.elements} == reference

    @given(st.lists(atoms, min_size=1, max_size=15))
    def test_choose_plus_rest_partitions(self, elements):
        srl = SRLSet(elements)
        assert srl.rest().insert(srl.choose()) == srl
        assert srl.choose() not in srl.rest()


class TestSRLList:
    def test_order_and_multiplicity_matter(self):
        assert SRLList([Atom(1), Atom(2)]) != SRLList([Atom(2), Atom(1)])
        assert SRLList([Atom(1), Atom(1)]) != SRLList([Atom(1)])

    def test_cons_head_tail(self):
        xs = SRLList([Atom(2)]).cons(Atom(1))
        assert xs.head() == Atom(1)
        assert xs.tail() == SRLList([Atom(2)])

    def test_head_tail_on_empty_raise(self):
        with pytest.raises(SRLRuntimeError):
            SRLList().head()
        with pytest.raises(SRLRuntimeError):
            SRLList().tail()


class TestValueKey:
    @given(st.lists(shallow_values, max_size=10))
    def test_sorting_is_stable_and_idempotent(self, values):
        once = value_sort(values)
        assert value_sort(once) == once

    @given(shallow_values, shallow_values)
    def test_key_consistent_with_equality(self, a, b):
        if a == b:
            assert value_key(a) == value_key(b)

    def test_kinds_are_separated(self):
        values = [True, Atom(0), make_tuple(Atom(0)), make_set(Atom(0))]
        ordered = value_sort(values)
        assert isinstance(ordered[0], bool)
        assert isinstance(ordered[1], Atom)

    def test_atom_order_permutation_changes_ranking(self):
        a, c = Atom(0), Atom(2)
        assert value_key(a) < value_key(c)
        # Under the permuted order 0 -> position 2, 2 -> position 0.
        assert value_key(a, (2, 1, 0)) > value_key(c, (2, 1, 0))


class TestConversions:
    def test_python_roundtrip(self):
        value = python_to_value({(1, 2), (3, 4)})
        assert isinstance(value, SRLSet)
        assert value_to_python(value) == frozenset({(1, 2), (3, 4)})

    def test_bool_is_not_an_atom(self):
        assert python_to_value(True) is True
        assert python_to_value(0) == Atom(0)

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=10))
    def test_set_roundtrip(self, ranks):
        assert value_to_python(python_to_value(set(ranks))) == frozenset(ranks)

    def test_is_value(self):
        assert is_value(make_set(make_tuple(Atom(1), True)))
        assert not is_value("hello")
        assert not is_value(3.14)

    def test_value_size_counts_constituents(self):
        assert value_size(Atom(1)) == 1
        assert value_size(make_tuple(Atom(1), Atom(2))) == 2
        assert value_size(make_set(Atom(1), Atom(2))) == 3  # 1 for the set + 2
