"""Columnar kernels (P7): bitset/CSR representations vs. set-level oracles.

Every kernel in :mod:`repro.core.columnar` is checked against the obvious
tuple-set computation on seeded random relations, and
:func:`closure_adjacency` against the engine's
:func:`~repro.core.engine.transitive_closure` kernel.
"""

import random

import pytest

from repro.core.columnar import (
    ColumnarRelation,
    adjacency_of_binary,
    and_rows,
    andnot_rows,
    bits_of_unary,
    closure_adjacency,
    compose,
    count_per_source,
    csr_of_adjacency,
    adjacency_of_csr,
    iter_bits,
    mask_rows_source,
    mask_rows_target,
    or_rows,
    proj_source,
    proj_target,
    rows_of_adjacency,
    rows_of_bits,
    transpose,
)
from repro.core.engine import transitive_closure
from repro.core.errors import ResourceLimitExceeded
from repro.core.governor import Budget, Governor


def random_binary(n, density, seed):
    rng = random.Random(seed)
    return {(x, y) for x in range(n) for y in range(n)
            if rng.random() < density}


def random_unary(n, density, seed):
    rng = random.Random(seed)
    return {(x,) for x in range(n) if rng.random() < density}


@pytest.mark.parametrize("seed", range(5))
class TestKernelsAgainstSets:
    N = 17

    def test_bitset_roundtrip(self, seed):
        rows = random_unary(self.N, 0.4, seed)
        assert rows_of_bits(bits_of_unary(rows)) == rows

    def test_adjacency_roundtrip_and_csr(self, seed):
        rows = random_binary(self.N, 0.2, seed)
        adj = adjacency_of_binary(rows, self.N)
        assert rows_of_adjacency(adj) == rows
        assert adjacency_of_csr(*csr_of_adjacency(adj)) == adj

    def test_iter_bits_ascending(self, seed):
        rows = random_unary(self.N, 0.5, seed)
        got = list(iter_bits(bits_of_unary(rows)))
        assert got == sorted(x for (x,) in rows)

    def test_transpose(self, seed):
        rows = random_binary(self.N, 0.25, seed)
        adj = adjacency_of_binary(rows, self.N)
        assert rows_of_adjacency(transpose(adj, self.N)) == \
            {(y, x) for x, y in rows}

    def test_compose(self, seed):
        left = random_binary(self.N, 0.2, seed)
        right = random_binary(self.N, 0.2, seed + 100)
        got = rows_of_adjacency(compose(
            adjacency_of_binary(left, self.N),
            adjacency_of_binary(right, self.N)))
        want = {(x, z) for x, y in left for y2, z in right if y == y2}
        assert got == want

    def test_masks_and_projections(self, seed):
        rows = random_binary(self.N, 0.3, seed)
        keep = random_unary(self.N, 0.5, seed + 1)
        adj = adjacency_of_binary(rows, self.N)
        bits = bits_of_unary(keep)
        assert rows_of_adjacency(mask_rows_source(adj, bits)) == \
            {(x, y) for x, y in rows if (x,) in keep}
        assert rows_of_adjacency(mask_rows_target(adj, bits)) == \
            {(x, y) for x, y in rows if (y,) in keep}
        assert rows_of_bits(proj_source(adj)) == {(x,) for x, _ in rows}
        assert rows_of_bits(proj_target(adj)) == {(y,) for _, y in rows}

    def test_rowwise_algebra(self, seed):
        a = adjacency_of_binary(random_binary(self.N, 0.3, seed), self.N)
        b = adjacency_of_binary(random_binary(self.N, 0.3, seed + 50), self.N)
        assert rows_of_adjacency(and_rows(a, b)) == \
            rows_of_adjacency(a) & rows_of_adjacency(b)
        assert rows_of_adjacency(andnot_rows(a, b)) == \
            rows_of_adjacency(a) - rows_of_adjacency(b)
        assert rows_of_adjacency(or_rows((a, b))) == \
            rows_of_adjacency(a) | rows_of_adjacency(b)

    def test_count_per_source(self, seed):
        rows = random_binary(self.N, 0.3, seed)
        adj = adjacency_of_binary(rows, self.N)
        for threshold in (1, 3, 8):
            want = {(x,) for x in range(self.N)
                    if sum(1 for r in rows if r[0] == x) >= threshold}
            assert rows_of_bits(count_per_source(adj, threshold)) == want


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("deterministic", [False, True])
def test_closure_matches_engine_kernel(seed, deterministic):
    """Frontier-BFS closure over row bitsets == the engine's set-level
    transitive-closure kernel (both reflexive over the universe)."""
    n = 13
    rows = random_binary(n, 0.15, seed)
    successors = {}
    for x, y in rows:
        successors.setdefault((x,), set()).add((y,))
    want = {(a[0], b[0]) for a, b in
            transitive_closure(successors, deterministic=deterministic)}
    want |= {(i, i) for i in range(n)}
    adj = adjacency_of_binary(rows, n)
    got = rows_of_adjacency(
        closure_adjacency(adj, n, deterministic=deterministic))
    assert got == want


def test_closure_respects_round_budget():
    n = 40
    adj = adjacency_of_binary({(i, i + 1) for i in range(n - 1)}, n)
    governor = Governor(Budget(max_fixpoint_rounds=3))
    with pytest.raises(ResourceLimitExceeded):
        closure_adjacency(adj, n, governor=governor)


class TestColumnarRelation:
    def test_representation_choice(self):
        n = 9
        assert ColumnarRelation.from_rows({(1,)}, 1, n).kind == "bitset"
        assert ColumnarRelation.from_rows({(1, 2)}, 2, n).kind == "csr"
        assert ColumnarRelation.from_rows({(1, 2, 3)}, 3, n).kind == "tuples"

    def test_set_protocol(self):
        r = ColumnarRelation.from_rows({(2, 1), (0, 3)}, 2, 5)
        assert len(r) == 2
        assert (2, 1) in r and (1, 2) not in r
        assert list(r) == [(0, 3), (2, 1)]  # sorted iteration
        assert r == {(2, 1), (0, 3)}

    def test_boolean_algebra_and_complement(self):
        n = 7
        a = ColumnarRelation.from_rows({(1,), (3,), (5,)}, 1, n)
        b = ColumnarRelation.from_rows({(3,), (6,)}, 1, n)
        assert set(a.union(b)) == {(1,), (3,), (5,), (6,)}
        assert set(a.difference(b)) == {(1,), (5,)}
        assert set(a.intersection(b)) == {(3,)}
        assert set(a.complement()) == {(0,), (2,), (4,), (6,)}
        binary = ColumnarRelation.from_rows({(0, 1)}, 2, 3)
        assert set(binary.complement()) == \
            {(x, y) for x in range(3) for y in range(3)} - {(0, 1)}

    def test_semijoins(self):
        n = 6
        edges = ColumnarRelation.from_rows(
            {(0, 1), (1, 2), (4, 5)}, 2, n)
        marked = ColumnarRelation.from_rows({(1,), (5,)}, 1, n)
        assert set(edges.semijoin(marked, on=0)) == {(1, 2)}
        assert set(edges.semijoin(marked, on=1)) == {(0, 1), (4, 5)}
        assert set(edges.antijoin(marked, on=0)) == {(0, 1), (4, 5)}
        assert set(edges.antijoin(marked, on=1)) == {(1, 2)}

    def test_project_rename_select(self):
        r = ColumnarRelation.from_rows({(0, 2), (1, 2)}, 2, 4)
        assert set(r.project((0,))) == {(0,), (1,)}
        assert set(r.project((1,))) == {(2,)}
        assert set(r.project((1, 0))) == {(2, 0), (2, 1)}
        assert set(r.rename((1, 0))) == {(2, 0), (2, 1)}
        assert set(r.select(lambda row: row[0] > 0)) == {(1, 2)}

    def test_closure_and_compose(self):
        path = ColumnarRelation.from_rows(
            {(0, 1), (1, 2), (2, 3)}, 2, 4)
        closed = path.closure()
        assert (0, 3) in closed and (3, 0) not in closed
        assert (2, 2) in closed  # reflexive
        assert set(path.compose(path)) == {(0, 2), (1, 3)}
