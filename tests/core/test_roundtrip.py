"""Property tests: ``parse(pretty(program))`` reproduces the AST.

The pretty printer documents this as an invariant; these tests pin it over
the complete program corpora shipped with the repo (the Fact 2.4 standard
library, every ``queries/*`` program, the compiled Turing-machine program)
and over adversarially generated names, which exercise the ``|...|``
verbatim-symbol quoting the printer emits for names that would not survive
re-parsing as bare symbols (reserved words, integer-shaped names, names
containing delimiters).
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    parse_expression,
    parse_program,
    pretty,
    pretty_program,
    standard_library,
)
from repro.core import builders as b
from repro.core.ast import Call, FunctionDef, Program, Var
from repro.machines.compile_srl import compile_machine
from repro.machines.programs import parity_machine
from repro.queries import (
    agap_program,
    apath_program,
    arithmetic_program,
    cardinality_parity_program,
    deterministic_reachability_program,
    even_program,
    im_program,
    ip_program,
    powerset_program,
    reachability_program,
)
from repro.queries.powerset import doubling_list_program
from repro.queries.relational import (
    colleague_pairs_program,
    departments_fully_senior_program,
    employees_in_department_program,
)


def _assert_program_round_trips(program: Program) -> None:
    text = pretty_program(program)
    parsed = parse_program(text)
    assert parsed.definitions == program.definitions
    assert parsed.main == program.main
    # The round trip is idempotent: printing the re-parsed program gives
    # the same text again.
    assert pretty_program(parsed) == text


PROGRAM_CORPUS = {
    "stdlib": standard_library,
    "agap": agap_program,
    "apath": apath_program,
    "arithmetic": arithmetic_program,
    "ip": ip_program,
    "im": im_program,
    "powerset": powerset_program,
    "doubling_list": doubling_list_program,
    "even": even_program,
    "cardinality_parity": cardinality_parity_program,
    "reachability_tc": reachability_program,
    "reachability_dtc": deterministic_reachability_program,
    "relational_department": lambda: employees_in_department_program(0),
    "relational_senior": departments_fully_senior_program,
    "relational_pairs": colleague_pairs_program,
}


@pytest.mark.parametrize("name", sorted(PROGRAM_CORPUS))
def test_corpus_program_round_trips(name):
    _assert_program_round_trips(PROGRAM_CORPUS[name]())


def test_compiled_turing_machine_round_trips():
    _assert_program_round_trips(compile_machine(parity_machine()).program)


# --------------------------------------------------------- adversarial names

_names = st.text(
    alphabet=st.characters(
        codec="ascii", min_codepoint=32, max_codepoint=126
    ).filter(lambda c: c != "\n"),
    min_size=0, max_size=12,
)


@given(name=_names)
def test_any_variable_name_round_trips(name):
    expr = Var(name)
    assert parse_expression(pretty(expr)) == expr


@given(name=_names)
def test_any_call_name_round_trips(name):
    expr = Call(name, (Var("x"), b.true()))
    assert parse_expression(pretty(expr)) == expr


@given(name=_names, param=_names)
def test_any_definition_name_round_trips(name, param):
    program = Program()
    program.define(FunctionDef(name=name, params=(param,), body=b.var(param)))
    program.main = Call(name, (b.false(),))
    _assert_program_round_trips(program)


@given(p1=_names, p2=_names)
def test_any_lambda_parameters_round_trip(p1, p2):
    expr = b.set_reduce(
        b.var("S"),
        b.lam(p1, p2, b.eq(b.var(p1), b.var(p2))),
        b.lam("a", "r", b.var("r")),
        b.emptyset(),
    )
    assert parse_expression(pretty(expr)) == expr


def test_reserved_and_integer_names_are_quoted():
    assert pretty(Var("true")) == "|true|"
    assert pretty(Var("42")) == "|42|"
    assert pretty(Var("set-reduce")) == "|set-reduce|"
    assert pretty(Call("atom", ())) == "(|atom|)"
    assert pretty(Var("a b")) == "|a b|"
    assert pretty(Var("a|b")) == "|a\\|b|"
    assert parse_expression("|true|") == Var("true")
