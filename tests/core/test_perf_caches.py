"""Differential property tests for the perf-overhaul caches.

Every optimized path in the values layer (cached canonical keys, the
sorted-input constructor, the binary-searched ``insert``, the linear-merge
``union``, the ``choose``/``rest`` fast path, the memoized ``value_size``)
must agree *exactly* with the seed's brute-force algorithms, which are kept
in :mod:`repro.core.reference` — including under permuted ``atom_order``
(Section 7 order-independence).
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core import Atom, Database, Evaluator, make_set, make_tuple
from repro.core.ast import Choose, Rest, Var
from repro.core.reference import (
    choose_reference,
    legacy_mode,
    rest_reference,
    value_key_reference,
    value_sort_reference,
)
from repro.core.values import (
    SRLList,
    SRLSet,
    SRLTuple,
    caches_enabled,
    value_key,
    value_size,
    value_sort,
)

DOMAIN = 8

atoms = st.integers(min_value=0, max_value=DOMAIN - 1).map(Atom)
# Naturals start at 2: the seed deduplicated via Python equality, under which
# True == 1 and False == 0 cross the bool/nat kind boundary; the key-based
# paths deliberately keep the kinds distinct (see DESIGN.md, "Values layer"),
# so the differential tests stay off that pathological (untyped) overlap.
scalars = st.one_of(st.booleans(), st.integers(min_value=2, max_value=9), atoms)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(lambda xs: SRLTuple(tuple(xs))),
        st.lists(children, max_size=4).map(SRLSet),
        st.lists(children, max_size=4).map(SRLList),
    ),
    max_leaves=20,
)
permutations = st.permutations(list(range(DOMAIN))).map(tuple)


class TestCachedKeys:
    @given(values)
    def test_cached_key_matches_reference(self, value):
        assert value_key(value) == value_key_reference(value)

    @given(values, permutations)
    def test_cached_key_matches_reference_under_permutation(self, value, order):
        assert value_key(value, order) == value_key_reference(value, order)

    @given(values, permutations)
    def test_key_is_stable_across_repeated_and_interleaved_calls(self, value, order):
        natural_first = value_key(value)
        permuted = value_key(value, order)
        # Asking again (now served from the cache) must return equal keys.
        assert value_key(value) == natural_first
        assert value_key(value, order) == permuted

    @given(st.lists(values, max_size=8))
    def test_sorting_matches_reference(self, items):
        assert value_sort(items) == value_sort_reference(items)

    @given(st.lists(values, max_size=8), permutations)
    def test_sorting_matches_reference_under_permutation(self, items, order):
        optimized = sorted(items, key=lambda v: value_key(v, order))
        assert optimized == value_sort_reference(items, order)


class TestSetConstruction:
    @given(st.lists(values, max_size=8))
    def test_construction_matches_seed(self, items):
        fast = SRLSet(items)
        with legacy_mode():
            slow = SRLSet(items)
        assert fast.elements == slow.elements

    @given(st.lists(values, max_size=8))
    def test_sorted_input_detection_is_invisible(self, items):
        # Feeding a set's own (already canonical) elements back in must
        # reproduce it exactly, via the no-sort path.
        canonical = SRLSet(items)
        assert SRLSet(canonical.elements).elements == canonical.elements

    @given(st.lists(values, max_size=8), values)
    def test_insert_matches_seed(self, items, extra):
        fast = SRLSet(items).insert(extra)
        with legacy_mode():
            slow = SRLSet(list(items) + [extra])
        assert fast.elements == slow.elements

    @given(st.lists(values, max_size=6), st.lists(values, max_size=6))
    def test_union_linear_merge_matches_seed(self, left, right):
        fast = SRLSet(left).union(SRLSet(right))
        with legacy_mode():
            slow = SRLSet(list(left) + list(right))
        assert fast.elements == slow.elements

    @given(st.lists(values, max_size=8), values)
    def test_membership_matches_seed(self, items, probe):
        fast = probe in SRLSet(items)
        with legacy_mode():
            slow = probe in SRLSet(items)
        assert fast == slow


class TestChooseRestFastPath:
    @given(st.lists(values, min_size=1, max_size=8))
    def test_choose_rest_match_brute_force(self, items):
        s = SRLSet(items)
        assert s.choose() == choose_reference(s)
        assert s.rest() == rest_reference(s)

    @given(st.lists(atoms, min_size=1, max_size=8), permutations)
    def test_evaluator_choose_rest_match_reference_under_permutation(self, items, order):
        s = SRLSet(items)
        database = Database({"S": s})
        natural = Evaluator()
        assert natural.run(database, main=Choose(Var("S"))) == choose_reference(s)
        assert natural.run(database, main=Rest(Var("S"))) == rest_reference(s)
        permuted = Evaluator(atom_order=order)
        assert permuted.run(database, main=Choose(Var("S"))) == choose_reference(s, order)
        assert permuted.run(database, main=Rest(Var("S"))) == rest_reference(s, order)

    @given(st.lists(st.lists(atoms, max_size=3).map(SRLSet), min_size=1, max_size=6),
           permutations)
    def test_fast_path_on_sets_of_sets_under_permutation(self, inner_sets, order):
        s = SRLSet(inner_sets)
        database = Database({"S": s})
        permuted = Evaluator(atom_order=order)
        assert permuted.run(database, main=Choose(Var("S"))) == choose_reference(s, order)
        assert permuted.run(database, main=Rest(Var("S"))) == rest_reference(s, order)


class TestValueSizeCache:
    @given(values)
    def test_cached_size_matches_seed(self, value):
        cached = value_size(value)
        with legacy_mode():
            assert value_size(value) == cached

    @given(st.lists(values, max_size=6))
    def test_size_propagates_through_insert_chains(self, items):
        s = SRLSet()
        value_size(s)  # warm the cache so propagation kicks in
        for item in items:
            s = s.insert(item)
            cached = value_size(s)
            with legacy_mode():
                assert value_size(s) == cached

    @given(st.lists(values, min_size=1, max_size=6))
    def test_size_propagates_through_rest(self, items):
        s = SRLSet(items)
        value_size(s)
        while not s.is_empty():
            cached = value_size(s)
            with legacy_mode():
                assert value_size(s) == cached
            s = s.rest()

    @given(st.lists(values, max_size=5))
    def test_size_propagates_through_cons(self, items):
        xs = SRLList()
        value_size(xs)
        for item in items:
            xs = xs.cons(item)
            cached = value_size(xs)
            with legacy_mode():
                assert value_size(xs) == cached


class TestKindConsistency:
    """The key-based paths keep bool and nat distinct kinds (DESIGN.md,
    "Values layer"); equality, hashing, membership and dedup must all agree
    on that, so a canonical set can never hold two equal elements."""

    def test_membership_and_equality_agree_on_bool_vs_nat(self):
        assert True not in SRLSet([1])
        assert 0 not in SRLSet([False])
        assert len(SRLSet([1]).insert(True)) == 2
        assert SRLSet([True]) != SRLSet([1])
        assert hash(SRLSet([True])) != hash(SRLSet([1]))

    def test_sets_of_sets_hold_no_equal_elements(self):
        outer = SRLSet([SRLSet([True]), SRLSet([1])])
        assert len(outer) == 2
        first, second = outer.elements
        assert first != second  # consistent: distinct members compare unequal

    def test_python_set_over_srl_sets_respects_kinds(self):
        assert len({SRLSet([True]), SRLSet([1]), SRLSet([True])}) == 2

    def test_homogeneous_equality_unchanged(self):
        assert SRLSet([Atom(1), Atom(2)]) == SRLSet([Atom(2), Atom(1)])
        assert make_set(make_set(Atom(1))) == make_set(make_set(Atom(1)))

    def test_language_equal_agrees_with_insert_dedup(self):
        # The language-level ``=`` must agree with insert's dedup: if a set
        # keeps x and y as two elements, ``x = y`` must be false.
        from repro.core.ast import BoolConst, Equal, Insert, EmptySet, NatConst
        evaluator = Evaluator()
        two = evaluator.run({}, main=Insert(BoolConst(True),
                                            Insert(NatConst(1), EmptySet())))
        assert len(two) == 2
        assert evaluator.run({}, main=Equal(BoolConst(True), NatConst(1))) is False
        assert evaluator.run({}, main=Equal(NatConst(1), NatConst(1))) is True
        assert evaluator.run({}, main=Equal(BoolConst(True), BoolConst(True))) is True

    def test_lists_respect_kinds(self):
        assert SRLList([True]) != SRLList([1])
        assert SRLList([Atom(1), Atom(2)]) == SRLList([Atom(1), Atom(2)])

    def test_foreign_probe_membership_falls_back_to_equality(self):
        # A plain Python tuple is not an SRL value, but the seed's equality
        # scan matched it against SRLTuple elements; that must still work.
        s = SRLSet([make_tuple(Atom(0), Atom(1))])
        assert (Atom(0), Atom(1)) in s
        assert "not-a-value" not in s


class TestPermutedKeyCacheBound:
    def test_many_random_orders_do_not_accumulate_keys(self):
        import itertools
        s = make_set(make_tuple(Atom(0), Atom(1)), Atom(2))
        for order in itertools.islice(itertools.permutations(range(DOMAIN)), 64):
            value_key(s, order)
        cache = s._key_cache
        assert sum(1 for k in cache if k is not None) <= 4
        # The natural-order key is never evicted.
        value_key(s)
        assert None in cache


class TestLegacyModeHygiene:
    def test_legacy_mode_restores_caching(self):
        assert caches_enabled()
        with legacy_mode():
            assert not caches_enabled()
        assert caches_enabled()

    def test_legacy_mode_restores_on_error(self):
        try:
            with legacy_mode():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert caches_enabled()

    def test_values_cross_modes(self):
        # A value built with caches on is usable in legacy mode and back.
        s = make_set(make_tuple(Atom(1), Atom(2)), Atom(0))
        key = value_key(s)
        with legacy_mode():
            assert value_key(s) == key
            grown = s.insert(Atom(3))
        assert grown.insert(Atom(4)).elements == \
            SRLSet([make_tuple(Atom(1), Atom(2)), Atom(0), Atom(3), Atom(4)]).elements
