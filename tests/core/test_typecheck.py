"""Tests for type inference / checking."""

from __future__ import annotations

import pytest

from repro.core import (
    ATOM,
    BOOL,
    NAT,
    Atom,
    Program,
    SetType,
    TypeChecker,
    make_set,
    make_tuple,
    parse_expression,
    parse_program,
    set_of,
    standard_library,
    tuple_of,
)
from repro.core.errors import SRLNameError, SRLTypeError
from repro.core.typecheck import check_program, database_types, type_of_value


def infer(text: str, program: Program | None = None, **input_types):
    checker = TypeChecker(program if program is not None else Program())
    return checker.check_expression(parse_expression(text), input_types).result_type


class TestTypeOfValue:
    def test_base_values(self):
        assert type_of_value(True) == BOOL
        assert type_of_value(Atom(3)) == ATOM
        assert type_of_value(7) == NAT

    def test_tuple_value(self):
        assert type_of_value(make_tuple(Atom(1), True)) == tuple_of(ATOM, BOOL)

    def test_homogeneous_set(self):
        assert type_of_value(make_set(Atom(1), Atom(2))) == set_of(ATOM)

    def test_heterogeneous_set_raises(self):
        with pytest.raises(SRLTypeError):
            type_of_value(make_set(Atom(1), True))

    def test_empty_set_gets_a_type_variable(self):
        t = type_of_value(make_set())
        assert isinstance(t, SetType)

    def test_database_types(self):
        types = database_types({"S": make_set(Atom(1)), "flag": True})
        assert types == {"S": set_of(ATOM), "flag": BOOL}


class TestInference:
    def test_constants(self):
        assert infer("true") == BOOL
        assert infer("(atom 3)") == ATOM
        assert infer("(nat 3)") == NAT

    def test_if_requires_matching_branches(self):
        assert infer("(if true (atom 1) (atom 2))") == ATOM
        with pytest.raises(SRLTypeError):
            infer("(if true (atom 1) false)")

    def test_if_requires_boolean_condition(self):
        with pytest.raises(SRLTypeError):
            infer("(if (atom 1) true false)")

    def test_tuple_and_select(self):
        assert infer("(tuple (atom 1) true)") == tuple_of(ATOM, BOOL)
        assert infer("(sel 2 (tuple (atom 1) true))") == BOOL

    def test_select_out_of_range(self):
        with pytest.raises(SRLTypeError):
            infer("(sel 3 (tuple (atom 1) true))")

    def test_equality_requires_same_type(self):
        assert infer("(= (atom 1) (atom 2))") == BOOL
        with pytest.raises(SRLTypeError):
            infer("(= (atom 1) true)")

    def test_leq_rejects_tuples(self):
        with pytest.raises(SRLTypeError):
            infer("(<= (tuple (atom 1) (atom 1)) (tuple (atom 1) (atom 2)))")

    def test_insert_unifies_element_with_set(self):
        assert infer("(insert (atom 1) emptyset)") == set_of(ATOM)
        with pytest.raises(SRLTypeError):
            infer("(insert (atom 1) (insert true emptyset))")

    def test_unbound_variable(self):
        with pytest.raises(SRLNameError):
            infer("S")

    def test_variable_takes_input_type(self):
        assert infer("S", S=set_of(ATOM)) == set_of(ATOM)

    def test_set_reduce_types(self):
        # Copying a set of atoms yields a set of atoms.
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        assert infer(text, S=set_of(ATOM)) == set_of(ATOM)

    def test_set_reduce_accumulator_mismatch(self):
        # acc returns an atom while base is a boolean.
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) a) true emptyset)"
        with pytest.raises(SRLTypeError):
            infer(text, S=set_of(ATOM))

    def test_new_requires_a_set_of_atoms(self):
        assert infer("(new S)", S=set_of(ATOM)) == ATOM
        with pytest.raises(SRLTypeError):
            infer("(new S)", S=set_of(BOOL))

    def test_choose_and_rest(self):
        assert infer("(choose S)", S=set_of(tuple_of(ATOM, ATOM))) == tuple_of(ATOM, ATOM)
        assert infer("(rest S)", S=set_of(ATOM)) == set_of(ATOM)

    def test_lists(self):
        assert infer("(cons (atom 1) emptylist)").element == ATOM
        text = "(list-reduce L (lambda (x e) x) (lambda (a r) (cons a r)) emptylist emptylist)"
        result = infer(text, L=parse_type_list_of_atom())
        assert result.element == ATOM

    def test_accumulator_types_are_recorded(self):
        checker = TypeChecker(Program())
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"
        report = checker.check_expression(parse_expression(text), {"S": set_of(ATOM)})
        assert report.accumulator_types == [set_of(ATOM)]
        assert report.max_set_height() == 1


def parse_type_list_of_atom():
    from repro.core.types import list_of

    return list_of(ATOM)


class TestCallChecking:
    def test_definition_is_checked_at_call_site(self):
        program = parse_program("(define (second p) (sel 2 p)) (second (tuple (atom 1) true))")
        report = check_program(program)
        assert report.result_type == BOOL

    def test_call_with_wrong_arity(self):
        program = parse_program("(define (id x) x) (id true false)")
        with pytest.raises(SRLTypeError):
            check_program(program)

    def test_recursive_definitions_rejected(self):
        program = parse_program("(define (loop x) (loop x)) (loop true)")
        with pytest.raises(SRLTypeError):
            check_program(program)

    def test_stdlib_types(self):
        program = standard_library()
        program.main = parse_expression("(union S T)")
        report = check_program(program, input_types={"S": set_of(ATOM), "T": set_of(ATOM)})
        assert report.result_type == set_of(ATOM)

    def test_member_is_boolean(self):
        program = standard_library()
        program.main = parse_expression("(member (atom 1) S)")
        report = check_program(program, input_types={"S": set_of(ATOM)})
        assert report.result_type == BOOL

    def test_check_program_from_sample_database(self):
        program = standard_library()
        program.main = parse_expression("(intersection S T)")
        report = check_program(program, database={"S": make_set(Atom(1)), "T": make_set(Atom(2))})
        assert report.result_type == set_of(ATOM)

    def test_program_without_main_raises(self):
        with pytest.raises(SRLTypeError):
            check_program(standard_library())
