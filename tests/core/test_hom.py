"""Tests for the Machiavelli hom operator (Section 7)."""

from __future__ import annotations

import operator

import pytest
from hypothesis import given, strategies as st

from repro.core import Atom, make_set, run_expression, standard_library
from repro.core import builders as b
from repro.core.hom import ProperHomViolation, check_proper, count_hom, hom, hom_expr
from repro.core.values import value_to_python


class TestHomReference:
    def test_empty_set_returns_z(self):
        assert hom(lambda x: x, operator.add, 42, []) == 42

    def test_hom_definition_unfolds_right(self):
        # hom(f, op, z, {x1, x2}) = op(f(x1), op(f(x2), z))
        trace = []

        def op(a, r):
            trace.append((a, r))
            return a + r

        assert hom(lambda x: x * 10, op, 0, [1, 2]) == 30
        assert trace == [(20, 0), (10, 20)]

    @given(st.lists(st.integers(min_value=-50, max_value=50), max_size=20))
    def test_proper_hom_is_order_independent(self, xs):
        forward = hom(lambda x: x, operator.add, 0, xs)
        backward = hom(lambda x: x, operator.add, 0, list(reversed(xs)))
        assert forward == backward == sum(xs)

    def test_improper_hom_can_depend_on_order(self):
        # Subtraction is not commutative: the two traversals disagree.
        forward = hom(lambda x: x, operator.sub, 0, [1, 2])
        backward = hom(lambda x: x, operator.sub, 0, [2, 1])
        assert forward != backward

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=15))
    def test_count_hom(self, xs):
        assert count_hom(xs) == len(xs)


class TestProperCheck:
    def test_addition_is_proper(self):
        assert check_proper(operator.add, [0, 1, 2, 5])

    def test_max_is_proper(self):
        assert check_proper(max, [0, 1, 7])

    def test_subtraction_is_not_proper(self):
        assert not check_proper(operator.sub, [0, 1, 2])

    def test_strict_mode_raises_with_witness(self):
        with pytest.raises(ProperHomViolation):
            check_proper(operator.sub, [0, 1], strict=True)

    def test_non_associative_operator_is_caught(self):
        # Average is commutative but not associative.
        average = lambda x, y: (x + y) / 2
        assert not check_proper(average, [0.0, 1.0, 2.0])


class TestHomToSRL:
    def test_hom_expr_translates_to_set_reduce(self):
        # hom(identity, union-of-singletons, {}, S) re-creates S.
        expr = hom_expr(
            b.var("S"),
            f_body=lambda x, e: b.insert(x, b.emptyset()),
            op_name="union",
            z=b.emptyset(),
        )
        s = make_set(Atom(1), Atom(4), Atom(2))
        result = run_expression(expr, {"S": s}, program=standard_library())
        assert result == s

    def test_hom_expr_boolean_or(self):
        # hom(x = pivot, or, false, S) is membership.
        expr = hom_expr(
            b.var("S"),
            f_body=lambda x, e: b.eq(x, e),
            op_name="or",
            z=b.false(),
            extra=b.var("pivot"),
        )
        s = make_set(Atom(1), Atom(4))
        lib = standard_library()
        assert run_expression(expr, {"S": s, "pivot": Atom(4)}, program=lib) is True
        assert run_expression(expr, {"S": s, "pivot": Atom(9)}, program=lib) is False

    def test_hom_expr_matches_python_hom(self):
        expr = hom_expr(
            b.var("S"),
            f_body=lambda x, e: b.insert(x, b.emptyset()),
            op_name="union",
            z=b.emptyset(),
        )
        ranks = {3, 1, 4, 1, 5}
        srl_result = run_expression(
            expr, {"S": make_set(*(Atom(r) for r in ranks))}, program=standard_library()
        )
        python_result = hom(lambda x: {x}, lambda a, r: a | r, set(), ranks)
        assert value_to_python(srl_result) == frozenset(python_result)
