"""Unit tests for the semi-naive relational-algebra layer
(:mod:`repro.core.relalg`): the :class:`IndexedRelation` data structure, the
bulk operators, and the naive/semi-naive fixed-point and closure kernels
(including their dispatch through the engine and the Session facade).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.engine import Session, least_fixpoint, transitive_closure
from repro.core.relalg import (
    IndexedRelation,
    naive_closure,
    naive_fixpoint,
    seminaive_closure,
    seminaive_fixpoint,
)


def random_successors(size: int, out_degree: float, seed: int) -> dict[int, list[int]]:
    rng = random.Random(seed)
    probability = out_degree / size
    return {
        u: [v for v in range(size) if rng.random() < probability]
        for u in range(size)
    }


def dfs_closure(successors, deterministic=False):
    """An independent oracle: per-start depth-first search (the pre-semi-naive
    implementation of the closure kernel)."""
    edges = {u: tuple(vs) for u, vs in successors.items()}
    if deterministic:
        edges = {u: (vs if len(vs) == 1 else ()) for u, vs in edges.items()}
    closure = set()
    for start in edges:
        reachable = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in edges.get(node, ()):
                if nxt not in reachable:
                    reachable.add(nxt)
                    frontier.append(nxt)
        closure.update((start, target) for target in reachable)
    return closure


class TestIndexedRelation:
    def test_add_deduplicates_and_reports_newness(self):
        relation = IndexedRelation()
        assert relation.add((1, 2))
        assert not relation.add((1, 2))
        assert relation.add((2, 3))
        assert len(relation) == 2
        assert (1, 2) in relation and (9, 9) not in relation
        assert set(relation) == {(1, 2), (2, 3)}

    def test_arity_is_inferred_and_enforced(self):
        relation = IndexedRelation([(1, 2, 3)])
        assert relation.arity == 3
        with pytest.raises(ValueError):
            relation.add((1, 2))
        with pytest.raises(IndexError):
            IndexedRelation([(1, 2)]).index(5)

    def test_rows_normalise_to_tuples(self):
        relation = IndexedRelation([[1, 2]])
        assert (1, 2) in relation
        assert not relation.add([1, 2])

    def test_index_is_built_lazily_and_maintained_incrementally(self):
        relation = IndexedRelation([(1, 10), (2, 10), (1, 20)])
        by_target = relation.index(1)
        assert by_target[10] == {(1, 10), (2, 10)}
        # Adds after the index is built must land in it.
        relation.add((3, 10))
        assert relation.matching(1, 10) == {(1, 10), (2, 10), (3, 10)}
        assert relation.matching(1, 99) == frozenset()
        # The lazily built index over a different column sees everything.
        assert relation.index(0)[1] == {(1, 10), (1, 20)}

    def test_delta_tracking(self):
        relation = IndexedRelation([(0, 1)])
        assert relation.has_delta
        assert relation.take_delta() == {(0, 1)}
        assert not relation.has_delta
        relation.add((0, 1))          # duplicate: not a new delta row
        assert not relation.has_delta
        relation.update([(1, 2), (2, 3)])
        assert relation.take_delta() == {(1, 2), (2, 3)}

    def test_join_probes_the_column_index(self):
        edges = IndexedRelation([(0, 1), (1, 2), (1, 3)])
        paths = edges.join(edges, left_column=1, right_column=0)
        assert set(paths) == {(0, 1, 2), (0, 1, 3)}
        composed = edges.join(
            edges, left_column=1, right_column=0,
            combine=lambda left, right: (left[0], right[1]),
        )
        assert set(composed) == {(0, 2), (0, 3)}

    def test_project_union_select(self):
        relation = IndexedRelation([(0, 1), (0, 2), (1, 2)])
        assert set(relation.project([0])) == {(0,), (1,)}
        assert set(relation.project([1, 0])) == {(1, 0), (2, 0), (2, 1)}
        assert set(relation.union([(7, 7)])) == {(0, 1), (0, 2), (1, 2), (7, 7)}
        assert set(relation.select(lambda row: row[0] == 0)) == {(0, 1), (0, 2)}

    def test_equality_against_sets_and_relations(self):
        assert IndexedRelation([(1, 2)]) == {(1, 2)}
        assert IndexedRelation([(1, 2)]) == IndexedRelation([(1, 2)])
        assert IndexedRelation([(1, 2)]) != {(2, 1)}

    def test_difference(self):
        relation = IndexedRelation([(0, 1), (0, 2), (1, 2)])
        assert set(relation.difference(IndexedRelation([(0, 2)]))) == {(0, 1), (1, 2)}
        # Plain iterables (and list-shaped rows) work too.
        assert set(relation.difference([[0, 1], (1, 2)])) == {(0, 2)}
        empty = relation.difference(relation)
        assert len(empty) == 0 and empty.arity == 2

    def test_difference_result_is_a_fresh_frontier(self):
        relation = IndexedRelation([(0, 1), (1, 2)])
        relation.take_delta()
        result = relation.difference([(1, 2)])
        # Delta-set semantics: the result's rows are all untaken frontier.
        assert result.has_delta
        assert result.take_delta() == {(0, 1)}
        # The operand's drained delta is untouched.
        assert not relation.has_delta

    def test_product(self):
        left = IndexedRelation([(0,), (1,)])
        right = IndexedRelation([(7, 8)])
        product = left.product(right)
        assert product.arity == 3
        assert set(product) == {(0, 7, 8), (1, 7, 8)}
        # Zero-arity relations are the product's identity: {()} x R = R.
        unit = IndexedRelation([()])
        assert set(unit.product(right)) == set(right)
        assert set(right.product(unit)) == set(right)
        # An empty factor annihilates.
        assert len(left.product(IndexedRelation(arity=2))) == 0

    def test_rename_permutes_columns(self):
        relation = IndexedRelation([(0, 1, 2), (3, 4, 5)])
        swapped = relation.rename((2, 0, 1))
        assert set(swapped) == {(2, 0, 1), (5, 3, 4)}
        assert swapped.arity == 3
        # The identity permutation copies.
        assert set(relation.rename((0, 1, 2))) == set(relation)

    def test_rename_rejects_non_permutations(self):
        relation = IndexedRelation([(0, 1)])
        with pytest.raises(ValueError):
            relation.rename((0, 0))      # collapses a column
        with pytest.raises(ValueError):
            relation.rename((0,))        # drops a column
        with pytest.raises(ValueError):
            relation.rename((0, 2))      # out of range

    def test_matching_is_immutable_on_hits_and_misses(self):
        relation = IndexedRelation([(1, 10), (2, 10)])
        hit = relation.matching(1, 10)
        miss = relation.matching(1, 99)
        assert isinstance(hit, frozenset) and isinstance(miss, frozenset)
        # A caller holding the hit cannot corrupt the live index: hits used
        # to leak the internal mutable bucket.
        assert not hasattr(hit, "add")
        relation.add((3, 10))
        assert hit == {(1, 10), (2, 10)}          # snapshot, not a view
        assert relation.matching(1, 10) == {(1, 10), (2, 10), (3, 10)}
        assert relation.index(1)[10] == {(1, 10), (2, 10), (3, 10)}

    def test_composite_index_on(self):
        relation = IndexedRelation([(0, 1, 5), (0, 2, 5), (0, 1, 7)])
        index = relation.index_on((0, 1))
        assert index[(0, 1)] == {(0, 1, 5), (0, 1, 7)}
        assert index[(0, 2)] == {(0, 2, 5)}
        # Maintained incrementally once built, alongside single-column ones.
        by_last = relation.index(2)
        relation.add((0, 1, 9))
        assert index[(0, 1)] == {(0, 1, 5), (0, 1, 7), (0, 1, 9)}
        assert by_last[9] == {(0, 1, 9)}
        # The same key tuple returns the same (persistent) index object.
        assert relation.index_on((0, 1)) is index
        with pytest.raises(IndexError):
            relation.index_on((0, 5))

    def test_semijoin_and_antijoin(self):
        relation = IndexedRelation([(0, 1), (1, 2), (2, 3)])
        keys = IndexedRelation([(1,), (3,)])
        assert set(relation.semijoin(keys, (1,))) == {(0, 1), (2, 3)}
        assert set(relation.antijoin(keys, (1,))) == {(1, 2)}
        # Key columns may reorder: probe (target, source) pairs.
        swapped = IndexedRelation([(1, 0)])
        assert set(relation.semijoin(swapped, (1, 0))) == {(0, 1)}
        assert set(relation.antijoin(swapped, (1, 0))) == {(1, 2), (2, 3)}
        # Full-column keys degenerate to set intersection / difference.
        subset = IndexedRelation([(0, 1), (9, 9)])
        assert set(relation.semijoin(subset, (0, 1))) == {(0, 1)}
        assert set(relation.antijoin(subset, (0, 1))) == {(1, 2), (2, 3)}

    def test_semijoin_antijoin_empty_key_and_unknown_arity(self):
        # An empty key projects every row to (): membership against the
        # unit relation keeps (antijoin: drops) everything — including on
        # relations whose arity was never declared (adopt's default),
        # which must not be mistaken for the identity-key fast path.
        relation = IndexedRelation.adopt({(1, 2), (3, 4)})
        unit = IndexedRelation([()])
        empty = IndexedRelation(arity=0)
        assert set(relation.semijoin(unit, ())) == {(1, 2), (3, 4)}
        assert set(relation.antijoin(unit, ())) == set()
        assert set(relation.semijoin(empty, ())) == set()
        assert set(relation.antijoin(empty, ())) == {(1, 2), (3, 4)}

    def test_adopt_wraps_without_copying(self):
        rows = {(0, 1), (1, 2)}
        relation = IndexedRelation.adopt(rows, arity=2)
        assert relation.rows is rows
        assert relation.arity == 2 and len(relation) == 2
        # Adopted relations are results, not frontiers: no delta.
        assert not relation.has_delta
        # Indexes build lazily and stay maintained through add().
        assert relation.matching(0, 1) == {(1, 2)}
        relation.add((1, 5))
        assert relation.matching(0, 1) == {(1, 2), (1, 5)}


class TestFixpointKernels:
    def test_naive_fixpoint_iterates_to_stability(self):
        double = lambda current: frozenset(current | {max(current) * 2}
                                           if max(current) < 8 else current)
        assert naive_fixpoint(double, frozenset({1})) == {1, 2, 4, 8}

    def test_seminaive_first_round_runs_on_empty_initial(self):
        # Premise-free derivations must fire even when initial is empty.
        def delta_step(delta, total):
            return {(0,)} if not total else {(len(total),)} if len(total) < 3 else set()
        assert seminaive_fixpoint((), delta_step) == {(0,), (1,), (2,)}

    def test_seminaive_filters_known_facts(self):
        calls = []

        def delta_step(delta, total):
            calls.append(sorted(delta))
            return {(0,), (1,)}   # returns already-known facts every round

        result = seminaive_fixpoint({(0,)}, delta_step)
        assert result == {(0,), (1,)}
        # Round 1: delta = initial; round 2: delta = {(1,)}; round 3: empty delta
        # is never produced because known facts are filtered -> loop stops.
        assert calls == [[(0,)], [(1,)]]

    def test_seminaive_notes_peak_resident_rows(self):
        from repro.logic.plan import PlanStats

        stats = PlanStats()
        grow = lambda delta, total: {(value + 1,) for (value,) in delta
                                     if value < 5}
        result = seminaive_fixpoint({(0,)}, grow, stats=stats)
        assert result == {(v,) for v in range(6)}
        # Peak = total + frontier at the final (empty-derivation) round:
        # all six facts accumulated plus the one-row frontier still live.
        assert stats.peak_rows_resident == 7

    def test_engine_least_fixpoint_signatures(self):
        step = lambda current: frozenset(current | {1})
        assert least_fixpoint(step, frozenset()) == {1}
        grow = lambda delta, total: {value + 1 for value in delta if value < 4}
        assert least_fixpoint(initial={0}, delta_step=grow) == {0, 1, 2, 3, 4}
        assert least_fixpoint(initial={0}, delta_step=grow,
                              seminaive=False) == {0, 1, 2, 3, 4}
        with pytest.raises(TypeError):
            least_fixpoint(step, delta_step=grow)
        with pytest.raises(TypeError):
            least_fixpoint()


class TestClosureKernels:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("deterministic", [False, True])
    def test_differential_naive_seminaive_dfs(self, seed, deterministic):
        successors = random_successors(14, out_degree=1.5, seed=seed)
        expected = dfs_closure(successors, deterministic)
        assert naive_closure(successors, deterministic) == expected
        assert seminaive_closure(successors, deterministic) == expected

    def test_closure_domain_is_the_mapping_keys(self):
        # 5 is a target but not a key: reachable, but no reflexive pair.
        closure = seminaive_closure({0: [5]})
        assert closure == {(0, 0), (0, 5)}
        assert naive_closure({0: [5]}) == closure

    def test_deterministic_prunes_branching_sources(self):
        successors = {0: [1, 2], 1: [3], 2: [], 3: []}
        assert transitive_closure(successors, deterministic=True) == {
            (0, 0), (1, 1), (1, 3), (2, 2), (3, 3),
        }

    def test_one_shot_target_iterators_are_materialized(self):
        successors = {0: iter([1]), 1: iter(())}
        assert transitive_closure(successors) == {(0, 0), (0, 1), (1, 1)}


class TestSessionKernelDispatch:
    def test_backends_share_the_kernels(self):
        successors = random_successors(10, out_degree=1.2, seed=3)
        expected = dfs_closure(successors)
        results = {
            backend: Session(backend=backend).transitive_closure(successors)
            for backend in ("compiled", "interp", "reference")
        }
        assert all(result == expected for result in results.values())

    def test_reference_backend_is_naive(self):
        assert not Session(backend="reference").seminaive
        assert Session(backend="compiled").seminaive
        assert Session(backend="interp").seminaive

    def test_session_least_fixpoint(self):
        grow = lambda delta, total: {value + 1 for value in delta if value < 3}
        for backend in ("compiled", "reference"):
            session = Session(backend=backend)
            assert session.least_fixpoint(initial={0}, delta_step=grow) == \
                {0, 1, 2, 3}


class TestFailedAddLeavesNoTrace:
    """Restore-on-exception at the data-structure level (PR 6): a rejected
    ``add`` — wrong arity — must leave the relation exactly as it was:
    rows, delta frontier, and every built index."""

    @staticmethod
    def _snapshot(relation: IndexedRelation):
        return (
            set(relation.rows),
            relation.has_delta,
            {column: {key: set(rows) for key, rows in index.items()}
             for column, index in relation._indexes.items()},
        )

    @given(
        rows=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                      max_size=20),
        bad=st.one_of(
            st.tuples(st.integers(0, 5)),
            st.tuples(st.integers(0, 5), st.integers(0, 5),
                      st.integers(0, 5)),
        ),
    )
    def test_rejected_add_is_a_noop(self, rows, bad):
        relation = IndexedRelation(rows, arity=2)
        relation.index(0)
        relation.index_on((0, 1))
        before = self._snapshot(relation)
        with pytest.raises(ValueError, match="arity mismatch"):
            relation.add(bad)
        assert self._snapshot(relation) == before
        # Still fully functional: a valid add lands in rows, delta and
        # both maintained indexes.
        assert relation.add((0, 0)) or (0, 0) in before[0]
        assert (0, 0) in relation.index(0)[0]

    @given(rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                         min_size=1, max_size=10))
    def test_rejected_update_keeps_the_valid_prefix_consistent(self, rows):
        """``update`` stops at the first bad row; everything added before
        it must be indexed exactly like a clean insertion would be."""
        relation = IndexedRelation(arity=2)
        relation.index(1)
        with pytest.raises(ValueError):
            relation.update(list(rows) + [(9,)])
        assert relation.rows == set(rows)
        for row in rows:
            assert row in relation.index(1)[row[1]]


class TestIndexTransfer:
    """P7 satellite: ``union`` / ``difference`` transfer existing
    per-column indexes to the result instead of forcing a full rebuild on
    the result's first probe."""

    def test_union_transfers_and_extends_indexes(self):
        relation = IndexedRelation([(0, 1), (1, 2), (2, 3)])
        single = relation.index(0)
        composite = relation.index_on((0, 1))
        result = relation.union([(3, 4), (1, 2)])
        # Transferred before any probe — index() takes the cached path,
        # no rebuild scan.
        assert 0 in result._indexes and (0, 1) in result._indexes
        assert result.index(0)[3] == {(3, 4)}        # extended by add()
        assert result.index(0)[0] == {(0, 1)}        # carried over
        assert result.index_on((0, 1))[(3, 4)] == {(3, 4)}
        # Buckets are clones: the operand's indexes are untouched.
        assert 3 not in single
        assert (3, 4) not in composite
        # Full-delta invariant of every bulk operator.
        assert result.take_delta() == result.rows

    def test_difference_prunes_transferred_indexes(self):
        relation = IndexedRelation([(0, 1), (1, 2), (2, 3), (3, 4)])
        relation.index(1)
        small_cut = relation.difference([(1, 2)])           # clone-and-prune
        assert small_cut.index(1) == {1: {(0, 1)}, 3: {(2, 3)}, 4: {(3, 4)}}
        big_cut = relation.difference([(0, 1), (1, 2), (2, 3)])  # rebuild
        assert big_cut.index(1) == {4: {(3, 4)}}
        assert relation.index(1)[2] == {(1, 2)}             # operand intact
        assert small_cut.take_delta() == small_cut.rows

    def test_unindexed_operands_stay_lazy(self):
        relation = IndexedRelation([(0, 1)])
        assert not relation.union([(1, 2)])._indexes
        assert not relation.difference([(0, 1)])._indexes

    def test_transferred_indexes_answer_plan_joins(self):
        """End-to-end through the plan kernels: a join probing a
        union-built relation's index counts its probes in PlanStats and
        produces exactly the rows of a from-scratch relation."""
        from repro.logic.plan import ExecutionContext, Join, PlanStats, RelationScan
        from repro.structures import path_graph

        structure = path_graph(5)
        plan = Join(RelationScan("E", ("x", "y")), RelationScan("E", ("y", "z")))
        stats = PlanStats()
        rows = plan.execute(ExecutionContext(structure, stats=stats)).rows
        assert stats.index_probes > 0
        base = IndexedRelation(structure.relation("E"))
        base.index(0)
        merged = base.union([(0, 3)])
        probe = merged.index(0)  # transferred, already maintained
        expected = IndexedRelation(merged.rows)
        assert probe == expected.index(0)
        assert {(x, y, z) for (x, y), (y2, z) in
                ((l, r) for l in base for r in base if l[1] == r[0])} == rows
