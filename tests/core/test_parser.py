"""Tests for the s-expression parser and the pretty-printer round trip."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    BoolConst,
    Call,
    EmptySet,
    If,
    Insert,
    Lambda,
    SetReduce,
    TupleExpr,
    Var,
    free_variables,
    parse_expression,
    parse_program,
    pretty,
    pretty_program,
)
from repro.core import builders as b
from repro.core.errors import SRLSyntaxError


class TestParseExpressions:
    def test_booleans(self):
        assert parse_expression("true") == BoolConst(True)
        assert parse_expression("false") == BoolConst(False)

    def test_emptyset(self):
        assert parse_expression("emptyset") == EmptySet()

    def test_variable(self):
        assert parse_expression("EDGES") == Var("EDGES")

    def test_if(self):
        expr = parse_expression("(if true false true)")
        assert isinstance(expr, If)
        assert expr.cond == BoolConst(True)

    def test_tuple_and_select(self):
        expr = parse_expression("(sel 2 (tuple x y))")
        assert expr == b.sel(2, b.tup(b.var("x"), b.var("y")))

    def test_atom_and_nat_literals(self):
        assert parse_expression("(atom 3)") == b.atom(3)
        assert parse_expression("(nat 7)") == b.nat(7)

    def test_bare_integer_is_rejected(self):
        with pytest.raises(SRLSyntaxError):
            parse_expression("42")

    def test_set_reduce(self):
        text = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) T emptyset)"
        expr = parse_expression(text)
        assert isinstance(expr, SetReduce)
        assert isinstance(expr.app, Lambda)
        assert expr.app.params == ("x", "e")
        assert isinstance(expr.acc.body, Insert)

    def test_call_of_unknown_head_becomes_call(self):
        expr = parse_expression("(union S T)")
        assert expr == Call("union", (Var("S"), Var("T")))

    def test_comments_are_ignored(self):
        expr = parse_expression("(if true ; comment here\n false true)")
        assert isinstance(expr, If)

    def test_new_choose_rest_cons(self):
        assert parse_expression("(new S)") == b.new(b.var("S"))
        assert parse_expression("(choose S)") == b.choose(b.var("S"))
        assert parse_expression("(rest S)") == b.rest(b.var("S"))
        assert parse_expression("(cons x emptylist)") == b.cons(b.var("x"), b.emptylist())


class TestParseErrors:
    @pytest.mark.parametrize("text", [
        "(if true false)",            # wrong arity
        "(sel x y)",                  # non-integer index
        "(lambda (x) x)",             # lambda needs two parameters
        "(insert x)",                 # wrong arity
        "(",                          # unbalanced
        "()",                         # empty form
        "(define (f x) x)",           # define not allowed in expressions
        "(set-reduce S (lambda (x e) x) x base extra)",   # acc not a lambda
    ])
    def test_malformed_input_raises(self, text):
        with pytest.raises(SRLSyntaxError):
            parse_expression(text)

    def test_trailing_input_raises(self):
        with pytest.raises(SRLSyntaxError):
            parse_expression("true false")

    def test_error_carries_location(self):
        with pytest.raises(SRLSyntaxError) as excinfo:
            parse_expression("(if true\n false)")
        assert "line" in str(excinfo.value)


class TestParsePrograms:
    def test_definitions_and_main(self):
        program = parse_program("""
        ; negation, defined from if-then-else
        (define (not a) (if a false true))
        (define (and a b) (if a b false))
        (and (not false) true)
        """)
        assert set(program.definitions) == {"not", "and"}
        assert isinstance(program.main, Call)

    def test_program_without_main(self):
        program = parse_program("(define (id x) x)")
        assert program.main is None
        assert "id" in program.definitions

    def test_pretty_program_roundtrip(self):
        program = parse_program("""
        (define (not a) (if a false true))
        (not true)
        """)
        reparsed = parse_program(pretty_program(program))
        assert reparsed.definitions.keys() == program.definitions.keys()
        assert reparsed.main == program.main


# ------------------------------------------------------- property-based tests

_names = st.sampled_from(["x", "y", "S", "T", "acc", "value"])


def _expressions(depth: int = 3):
    leaves = st.one_of(
        st.booleans().map(BoolConst),
        _names.map(Var),
        st.just(EmptySet()),
        st.integers(min_value=0, max_value=9).map(b.atom),
    )
    if depth == 0:
        return leaves
    sub = _expressions(depth - 1)
    return st.one_of(
        leaves,
        st.tuples(sub, sub, sub).map(lambda t: If(*t)),
        st.lists(sub, min_size=1, max_size=3).map(lambda xs: TupleExpr(tuple(xs))),
        st.tuples(st.integers(min_value=1, max_value=3), sub).map(lambda t: b.sel(*t)),
        st.tuples(sub, sub).map(lambda t: b.eq(*t)),
        st.tuples(sub, sub).map(lambda t: b.insert(*t)),
        st.tuples(sub, sub, sub, sub).map(
            lambda t: b.set_reduce(t[0], b.lam("x", "e", t[1]), b.lam("a", "r", t[2]), t[3])
        ),
        st.tuples(st.sampled_from(["union", "member", "f"]), sub, sub).map(
            lambda t: Call(t[0], (t[1], t[2]))
        ),
    )


class TestRoundTrip:
    @given(_expressions())
    def test_parse_of_pretty_is_identity(self, expr):
        assert parse_expression(pretty(expr)) == expr

    @given(_expressions())
    def test_free_variables_survive_roundtrip(self, expr):
        assert free_variables(parse_expression(pretty(expr))) == free_variables(expr)
