"""Tests for the Section 6 complexity-from-syntax analysis."""

from __future__ import annotations

import pytest

from repro.core import ATOM, Program, analyze, parse_expression, parse_program, set_of, tuple_of
from repro.core.analysis import expression_depth, expression_width
from repro.core.errors import SRLError


COPY = "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r)) emptyset emptyset)"

NESTED = """(set-reduce S (lambda (x e) x)
              (lambda (a r)
                (set-reduce r (lambda (y e) y) (lambda (c d) (insert c d)) emptyset emptyset))
              emptyset emptyset)"""


class TestDepth:
    def test_base_functions_have_depth_zero(self):
        assert expression_depth(parse_expression("(insert (atom 1) emptyset)")) == 0
        assert expression_depth(parse_expression("(if true false true)")) == 0

    def test_single_reduce_has_depth_one(self):
        assert expression_depth(parse_expression(COPY)) == 1

    def test_nested_reduce_has_depth_two(self):
        assert expression_depth(parse_expression(NESTED)) == 2

    def test_calls_contribute_their_definition_depth(self):
        program = parse_program(f"(define (copy S) {COPY}) (copy (copy T))")
        assert expression_depth(program.main, program) == 1

    def test_depth_through_nested_calls(self):
        program = parse_program(f"""
        (define (copy S) {COPY})
        (define (twice S) (copy {COPY}))
        (twice T)
        """)
        assert expression_depth(program.main, program) == 1


class TestWidth:
    def test_default_width_is_one(self):
        assert expression_width(parse_expression(COPY)) == 1

    def test_width_is_max_tuple_arity(self):
        expr = parse_expression("(insert (tuple (atom 1) (atom 2) (atom 3)) emptyset)")
        assert expression_width(expr) == 3

    def test_width_looks_through_calls(self):
        program = parse_program("""
        (define (pair x) (tuple x x))
        (pair (atom 1))
        """)
        assert expression_width(program.main, program) == 2


class TestClassification:
    def test_program_without_main_raises(self):
        with pytest.raises(SRLError):
            analyze(Program())

    def test_plain_first_order_expression(self):
        program = Program(main=parse_expression("(= (atom 1) (atom 2))"))
        analysis = analyze(program)
        assert analysis.classification.startswith("FO")
        assert analysis.depth == 0

    def test_srl_program_is_p(self):
        program = Program(main=parse_expression(COPY))
        analysis = analyze(program, input_types={"S": set_of(tuple_of(ATOM, ATOM))})
        assert "P = SRL" in analysis.classification
        assert analysis.set_height == 1
        assert analysis.time_exponent == analysis.width * analysis.depth

    def test_flat_accumulator_is_logspace(self):
        # Keep only a single tuple in the accumulator: BASRL shape.
        text = """(set-reduce S (lambda (x e) x)
                              (lambda (a r) (if (<= a (sel 1 r)) (tuple a) r))
                              (tuple (atom 0)) emptyset)"""
        program = Program(main=parse_expression(text))
        analysis = analyze(program, input_types={"S": set_of(ATOM)})
        assert "L = BASRL" in analysis.classification
        assert analysis.accumulators_flat

    def test_set_height_two_is_exponential(self):
        # The input itself is a set of sets.
        program = Program(main=parse_expression(COPY))
        analysis = analyze(program, input_types={"S": set_of(set_of(ATOM))})
        assert "DTIME(2_2#n)" in analysis.classification
        assert analysis.set_height == 2

    def test_new_is_primrec(self):
        program = Program(main=parse_expression("(insert (new S) S)"))
        analysis = analyze(program, input_types={"S": set_of(ATOM)})
        assert "PrimRec" in analysis.classification
        assert analysis.uses_new

    def test_lists_are_primrec(self):
        program = Program(main=parse_expression("(cons (atom 1) emptylist)"))
        analysis = analyze(program)
        assert "PrimRec" in analysis.classification
        assert analysis.uses_lists

    def test_time_bound_string(self):
        program = Program(main=parse_expression(NESTED))
        analysis = analyze(program, input_types={"S": set_of(ATOM)})
        assert analysis.time_bound == f"DTIME(n^{analysis.time_exponent} * T_ins)"
        assert analysis.depth == 2

    def test_summary_mentions_classification(self):
        program = Program(main=parse_expression(COPY))
        analysis = analyze(program, input_types={"S": set_of(ATOM)})
        assert analysis.classification in analysis.summary()

    def test_analysis_without_types_is_syntactic(self):
        program = Program(main=parse_expression(COPY))
        analysis = analyze(program)
        # Without input types the analysis still runs; it assumes height 1
        # for a program that uses set-reduce.
        assert analysis.set_height == 1
        assert analysis.type_report is None
