"""Tests for the model checker's fixed-point/closure memoization and the
mutate-and-restore quantifier evaluation (perf overhaul, see DESIGN.md).

The memoized checker must be *observationally identical* to the seed's
recompute-every-time checker (``memoize=False``), including when the
auxiliary interpretations in scope change between evaluations of the same
formula object.
"""

from __future__ import annotations

import pytest

from repro.logic.eval import ModelChecker, define_relation, evaluate
from repro.logic.formula import (
    LFPAtom,
    TCAtom,
    and_,
    aux,
    count_at_least,
    eq,
    exists,
    forall,
    or_,
    rel,
    var,
)
from repro.logic.queries import gap_formula, reachability_dtc, reachability_tc
from repro.queries.transitive_closure import transitive_closure_baseline
from repro.structures import path_graph, random_graph


def _tc_with_free_endpoints() -> TCAtom:
    return TCAtom(("x",), ("y",), rel("E", "x", "y"), (var("u"),), (var("v"),))


def _lfp_reach_with_free_endpoints() -> LFPAtom:
    body = or_(
        eq("x", "y"),
        exists("z", and_(rel("E", "x", "z"), aux("R", "z", "y"))),
    )
    return LFPAtom("R", ("x", "y"), body, (var("u"), var("v")))


class TestMemoizedFixedPointsAgree:
    @pytest.mark.parametrize("seed", range(4))
    def test_tc_define_relation_matches_unmemoized_and_baseline(self, seed):
        g = random_graph(6, seed=seed)
        formula = _tc_with_free_endpoints()
        memoized = define_relation(formula, g, ("u", "v"), memoize=True)
        recomputed = define_relation(formula, g, ("u", "v"), memoize=False)
        assert memoized == recomputed
        assert memoized == transitive_closure_baseline(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_lfp_define_relation_matches_unmemoized(self, seed):
        g = random_graph(5, seed=seed)
        formula = _lfp_reach_with_free_endpoints()
        memoized = define_relation(formula, g, ("u", "v"), memoize=True)
        recomputed = define_relation(formula, g, ("u", "v"), memoize=False)
        assert memoized == recomputed
        # The GAP fixed point *is* reflexive transitive reachability.
        assert memoized == transitive_closure_baseline(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_sentences_agree_between_modes(self, seed):
        g = random_graph(6, seed=seed)
        for sentence in (gap_formula(), reachability_tc(), reachability_dtc()):
            assert (
                ModelChecker(g, memoize=True).evaluate(sentence)
                == ModelChecker(g, memoize=False).evaluate(sentence)
                == evaluate(sentence, g)
            )

    def test_repeated_evaluations_hit_the_cache(self):
        g = random_graph(6, seed=1)
        checker = ModelChecker(g)
        formula = _tc_with_free_endpoints()
        first = {(u, v)
                 for u in g.universe for v in g.universe
                 if checker.evaluate(formula, {"u": u, "v": v})}
        # One cache entry for the TC closure, reused across all n^2 queries.
        assert len(checker._fixpoint_cache) == 1
        assert first == set(transitive_closure_baseline(g))


class TestMemoKeyedOnAuxiliarySnapshot:
    def test_same_formula_different_auxiliary_is_not_conflated(self):
        g = path_graph(4)
        # LFP over a body that reads the ambient auxiliary relation EXTRA:
        # the fixed point is the reflexive closure of EXTRA's reachability.
        body = or_(
            eq("x", "y"),
            exists("z", and_(aux("EXTRA", "x", "z"), aux("R", "z", "y"))),
        )
        formula = LFPAtom("R", ("x", "y"), body, (var("u"), var("v")))

        checker = ModelChecker(g, {"EXTRA": frozenset({(0, 1)})})
        assert checker.evaluate(formula, {"u": 0, "v": 1})
        assert not checker.evaluate(formula, {"u": 1, "v": 2})

        # Mutating the auxiliary in place must produce fresh results, not
        # stale cache hits for the same formula object.
        checker.auxiliary["EXTRA"] = frozenset({(1, 2)})
        assert checker.evaluate(formula, {"u": 1, "v": 2})
        assert not checker.evaluate(formula, {"u": 0, "v": 1})

    def test_stage_relation_is_restored_after_lfp(self):
        g = path_graph(3)
        outer = frozenset({(2, 0)})
        checker = ModelChecker(g, {"R": outer})
        formula = _lfp_reach_with_free_endpoints()  # binds R internally
        assert checker.evaluate(formula, {"u": 0, "v": 2})
        # The LFP iteration shadowed R via mutate-and-restore; the caller's
        # interpretation must survive.
        assert checker.auxiliary["R"] == outer


class TestQuantifierMutateAndRestore:
    def test_caller_assignment_is_not_mutated(self):
        g = path_graph(4)
        checker = ModelChecker(g)
        assignment = {"x": 0}
        sentence = exists("y", rel("E", "x", "y"))
        assert checker.evaluate(sentence, assignment)
        assert assignment == {"x": 0}

    def test_shadowed_variable_is_restored(self):
        g = path_graph(4)
        checker = ModelChecker(g)
        # The inner exists shadows x; after it finishes, the outer binding
        # of x must be back in force for the conjunct that follows.
        sentence = forall(
            "x",
            or_(
                and_(exists("x", rel("E", "x", "x")), eq("x", "x")),
                eq("x", "x"),
            ),
        )
        assert checker.evaluate(sentence)

    def test_counting_quantifier_agrees_with_explicit_count(self):
        g = path_graph(5)
        # Vertices with at least one successor: 0..3 (4 of the 5).
        has_successor = exists("y", rel("E", "x", "y"))
        at_least = count_at_least(4, "x", has_successor)
        beyond = count_at_least(5, "x", has_successor)
        assert evaluate(at_least, g)
        assert not evaluate(beyond, g)
