"""Per-plan codegen (P7): compiled columnar closures vs. the interpreter.

The differential corpus in ``test_plan_differential.py`` already proves
row-level agreement four ways; this module pins the codegen *machinery*:
the compile cache and its hit counter, the representation report, the
degradation record on unsupported shapes, governor parity, and the
Session / CLI wiring.
"""

import pytest

from repro.core.engine import Session
from repro.core.errors import ResourceLimitExceeded
from repro.core.governor import Budget
from repro.logic.codegen import (
    MAX_COLUMNAR_UNIVERSE,
    clear_codegen_cache,
    compile_columnar,
    compiled_columnar,
    execute_columnar,
    last_report,
    representation_of,
)
from repro.logic.compile import compile_formula
from repro.logic.eval import LOGIC_BACKENDS, ModelChecker, define_relation
from repro.logic.formula import (
    LFPAtom,
    TCAtom,
    VarTerm,
    and_,
    aux,
    count_at_least,
    neg,
    or_,
    rel,
    var,
)
from repro.logic.optimize import optimize_formula
from repro.logic.plan import ExecutionContext, PlanStats
from repro.structures import path_graph, random_graph

TC = TCAtom(("a",), ("b",), rel("E", "a", "b"), (var("x"),), (var("y"),))


def test_columnar_is_a_registered_backend():
    assert "columnar" in LOGIC_BACKENDS


def test_compiled_source_is_inspectable():
    plan = compile_formula(TC)
    compiled = compile_columnar(plan, 8)
    assert "def _columnar_plan(rt):" in compiled.source
    assert compiled.out_tag == "r"  # two columns -> CSR rows
    rows = compiled.execute(path_graph(8))
    context = ExecutionContext(path_graph(8))
    assert rows == plan.execute(context).rows


def test_codegen_cache_key_includes_universe_and_strategy():
    clear_codegen_cache()
    plan = compile_formula(TC)
    stats = PlanStats()
    a = compiled_columnar(plan, 8, True, stats)
    assert stats.codegen_cache_hits == 0
    b = compiled_columnar(plan, 8, True, stats)
    assert b is a
    assert stats.codegen_cache_hits == 1
    # A different universe size or fixed-point strategy is a different
    # specialization: no sharing.
    assert compiled_columnar(plan, 9, True, stats) is not a
    assert compiled_columnar(plan, 8, False, stats) is not a
    assert stats.codegen_cache_hits == 1


def test_representation_report():
    structure = path_graph(6)
    plan = compile_formula(TC)
    execute_columnar(plan, structure)
    report = last_report()
    assert report["universe"] == 6
    assert report["representations"]["csr"] >= 1
    assert report["tuple_fallbacks"] == []


def test_representation_of_by_arity():
    assert representation_of(1) == "bitset"
    assert representation_of(2) == "csr"
    assert representation_of(3) == "tuples"


def test_arity_three_recorded_as_fallback():
    formula = LFPAtom(
        "R3", ("f1", "f2", "f3"),
        or_(and_(rel("E", "f1", "f2"), rel("E", "f2", "f3")),
            aux("R3", "f1", "f2", "f3")),
        (VarTerm("u"), VarTerm("v"), VarTerm("v")))
    structure = path_graph(5)
    plan = compile_formula(formula, ("u", "v"))
    events = []
    rows = execute_columnar(plan, structure, degradations=events)
    context = ExecutionContext(structure)
    assert rows == plan.execute(context).rows
    fallbacks = [e for e in events if e.stage == "representation"]
    assert fallbacks and all(e.fallback == "tuple" for e in fallbacks)
    assert last_report()["tuple_fallbacks"]


def test_universe_cost_gate():
    structure = path_graph(4)
    plan = compile_formula(rel("E", "x", "y"))
    object.__setattr__(structure, "size", MAX_COLUMNAR_UNIVERSE + 1)
    with pytest.raises(ValueError, match="universe"):
        execute_columnar(plan, structure)


def test_governed_codegen_enforces_row_and_round_budgets():
    """The compiled closure checks the same budget dimensions at the same
    choke points as the interpreter: rows materialized and fixpoint
    rounds."""
    structure = random_graph(12, 0.4, seed=2)
    plan = optimize_formula(TC, structure)
    with pytest.raises(ResourceLimitExceeded):
        execute_columnar(plan, structure,
                         governor=Budget(max_rows_materialized=3).start())
    from repro.logic.formula import ZERO, eq, exists
    lfp = LFPAtom(
        "R", ("v",),
        or_(eq(var("v"), ZERO),
            exists("u", and_(aux("R", "u"), rel("E", "u", "v")))),
        (var("x"),))
    with pytest.raises(ResourceLimitExceeded):
        execute_columnar(optimize_formula(lfp, structure), structure,
                         governor=Budget(max_fixpoint_rounds=0).start())


def test_columnar_backend_degrades_to_interpreter_not_wrong_answers():
    """A checker on the columnar backend over an interpreter-only shape
    (arity-3 fixed point) records the representation fallback yet answers
    exactly like the oracle."""
    formula = LFPAtom(
        "R3", ("f1", "f2", "f3"),
        or_(and_(rel("E", "f1", "f2"), rel("E", "f2", "f3")),
            aux("R3", "f1", "f2", "f3")),
        (VarTerm("u"), VarTerm("v"), VarTerm("v")))
    structure = path_graph(5)
    want = define_relation(formula, structure, ("u", "v"), backend="tuple")
    got = define_relation(formula, structure, ("u", "v"), backend="columnar")
    assert got == want


def test_complement_queries_on_columnar_backend():
    """The P7 inductive-counting queries: non-reachability (a bitset
    complement) and the reach-half census (popcount per CSR row)."""
    from repro.logic.queries import CANONICAL_QUERIES
    structure = random_graph(10, 0.2, seed=9)
    for name in ("non-reach", "count-reach"):
        query = CANONICAL_QUERIES[name]
        formula = query.formula()
        assert define_relation(formula, structure, query.variables,
                               backend="columnar") == \
            define_relation(formula, structure, query.variables,
                            backend="tuple")


class TestSessionWiring:
    def test_logic_backend_override(self):
        session = Session(logic_backend="columnar")
        assert session.logic_backend == "columnar"
        structure = path_graph(6)
        rows = session.define_relation(TC, structure, ("x", "y"))
        oracle = Session(backend="reference")
        assert rows == oracle.define_relation(TC, structure, ("x", "y"))

    def test_default_derivation_unchanged(self):
        assert Session().logic_backend == "plan"
        assert Session(backend="reference").logic_backend == "tuple"

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="logic backend"):
            Session(logic_backend="simd")

    def test_evaluate_formula_parity(self):
        structure = random_graph(7, 0.3, seed=4)
        columnar = Session(logic_backend="columnar")
        reference = Session(backend="reference")
        count = count_at_least(2, "y", rel("E", "x", "y"))
        for x in structure.universe:
            assignment = {"x": x}
            assert columnar.evaluate_formula(count, structure, assignment) \
                == reference.evaluate_formula(count, structure, assignment)


def test_checker_memoizes_compiled_relation():
    structure = path_graph(7)
    checker = ModelChecker(structure, backend="columnar")
    checker.evaluate(TC, {"x": 0, "y": 3})
    rows_before = checker.plan_stats.rows_materialized
    checker.evaluate(TC, {"x": 1, "y": 6})
    # Second assignment answered from the cached defined relation: no new
    # plan execution at all.
    assert checker.plan_stats.rows_materialized == rows_before
