"""The IVM differential suite (P8 acceptance): after every update, each
maintained relation must equal a from-scratch recompute on the tuple
backend — across all four backends (columnar, optimized plan, raw plan,
tuple), over both the canonical queries and the seeded fuzz corpus.

The tier-1 slice pins a small seed range of :func:`repro.testing.fuzz.
run_case` (the same harness the nightly ``fuzz-corpus`` CI job sweeps at
scale) plus directed update sequences on the closure / fixpoint / delta
strategies.  The ``slow`` marker holds the wider sweep.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.logic.eval import ModelChecker, define_relation
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures import Change, Changeset, Structure, random_alternating_graph
from repro.testing.fuzz import PROFILES, generate_updates, run_case

BACKENDS = ("columnar", "plan", "tuple")


def copy_structure(structure):
    return Structure(structure.vocabulary, structure.size,
                     dict(structure.relations), intern=structure.intern)


def normalized(columns, rows, layout):
    positions = [columns.index(c) for c in layout]
    return {tuple(row[p] for p in positions) for row in rows}


def random_changesets(rng, size, steps):
    for _ in range(steps):
        ops = []
        for _ in range(rng.randrange(1, 4)):
            op = rng.choice(["insert", "delete"])
            row = (rng.randrange(size), rng.randrange(size))
            ops.append(Change(op, "E", row))
        yield Changeset(tuple(ops))


# ------------------------------------------------ directed per-strategy runs


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", ["tc", "apath", "half-out"])
@pytest.mark.parametrize("seed", range(4))
def test_canonical_queries_survive_update_sequences(name, backend, seed):
    """tc exercises the closure patch, apath the recompute fallback,
    half-out the counting drop — on every backend, against the oracle."""
    query = CANONICAL_QUERIES[name]
    structure = random_alternating_graph(5, seed=seed)
    checker = ModelChecker(structure, backend=backend)
    checker.defined_relation(query.formula())
    rng = random.Random(1000 + seed)
    for changeset in random_changesets(rng, structure.size, steps=5):
        checker.apply_update(changeset)
        expected = define_relation(query.formula(),
                                   copy_structure(structure),
                                   query.variables, backend="tuple")
        columns, rows = checker.defined_relation(query.formula())
        assert normalized(columns, rows, query.variables) == expected, \
            f"{name}/{backend} diverged at seed {seed}: {changeset!r}"


@pytest.mark.parametrize("seed", range(4))
def test_lfp_fixpoint_maintenance_differential(seed):
    from test_ivm import lfp_tc

    structure = random_alternating_graph(6, seed=seed)
    checker = ModelChecker(structure, backend="plan")
    checker.defined_relation(lfp_tc())
    rng = random.Random(2000 + seed)
    for changeset in random_changesets(rng, structure.size, steps=5):
        checker.apply_update(changeset)
        expected = define_relation(lfp_tc(), copy_structure(structure),
                                   ("u", "v"), backend="tuple")
        columns, rows = checker.defined_relation(lfp_tc())
        assert normalized(columns, rows, ("u", "v")) == expected
    assert checker.ivm_stats.get("fixpoint", 0) > 0


# ------------------------------------------------------ pinned fuzz corpus


@pytest.mark.parametrize("seed", range(12))
def test_pinned_fuzz_corpus(seed):
    """A fixed slice of the nightly fuzz sweep, one case per seed.  Any
    failure prints the replay command (``--seed N``)."""
    run_case(seed)


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_each_profile_runs_clean(profile):
    for seed in range(3):
        run_case(seed, profile=profile)


def test_generated_updates_are_deterministic():
    first = [c.changes for c in generate_updates(7, 5)]
    second = [c.changes for c in generate_updates(7, 5)]
    assert first == second and any(first)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(12, 60))
def test_nightly_fuzz_corpus(seed):
    run_case(seed)


# ----------------------------------------------------------- CLI --updates


def test_cli_updates_flag(tmp_path, capsys):
    from repro.__main__ import main

    structure = tmp_path / "s.json"
    structure.write_text(json.dumps(
        {"D": list(range(6)), "E": [[i, i + 1] for i in range(4)]}))
    updates = tmp_path / "u.json"
    updates.write_text(json.dumps([
        {"op": "insert", "relation": "E", "row": [4, 5]},
        {"op": "delete", "relation": "E", "row": [1, 2]},
    ]))
    assert main(["logic", "tc", "--structure", str(structure),
                 "--updates", str(updates), "--backend", "plan"]) == 0
    out = capsys.readouterr().out
    assert "2 net changes (+1/-1)" in out
    assert "maintenance: closure=1" in out
    # the printed relation reflects the post-update structure
    rows = {tuple(map(int, line.split()))
            for line in out.splitlines() if line.startswith("  ")}
    assert (0, 1) in rows and (4, 5) in rows
    assert (1, 2) not in rows and (0, 2) not in rows
