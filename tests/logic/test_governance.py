"""Budget-bounded differential suite + degradation-ladder tests (PR 6).

The governance contract, stated as a differential property: a
budget-bounded run either produces **exactly** the unbounded answer, or
raises a clean :class:`ResourceLimitExceeded` carrying partial stats —
and in the latter case the session/checker is restored to its pre-query
state, proven by re-running the same query unbounded *in the same
session* and getting the right answer.
"""

from __future__ import annotations

import pytest

from repro.core import Session
from repro.core.errors import (
    DeadlineExceeded,
    EvaluationCancelled,
    FixpointRoundLimitExceeded,
    MemoLimitExceeded,
    ResourceLimitExceeded,
    RowLimitExceeded,
)
from repro.core.governor import Budget, CancelToken
from repro.logic.eval import ModelChecker, define_relation
from repro.logic.plan import PlanStats
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures import random_alternating_graph

from test_plan_differential import FREE_VARIABLES, FormulaGenerator, GENERATOR_SEEDS

#: Generous enough that nothing trips: governed must equal ungoverned.
GENEROUS = Budget(deadline_seconds=300.0, max_rows_materialized=10**9,
                  max_fixpoint_rounds=10**6, max_memo_entries=10**6)

#: Tight enough that realistic queries trip at least one cap.
TIGHT = Budget(max_rows_materialized=8, max_fixpoint_rounds=1)


# ----------------------------------------------------- bounded == unbounded


@pytest.mark.parametrize("name", sorted(CANONICAL_QUERIES))
@pytest.mark.parametrize("backend", ["plan", "tuple"])
def test_canonical_queries_unchanged_under_a_generous_budget(name, backend):
    query = CANONICAL_QUERIES[name]
    structure = random_alternating_graph(6, seed=2)
    formula = query.formula()
    unbounded = define_relation(formula, structure, query.variables,
                                backend=backend)
    bounded = define_relation(formula, structure, query.variables,
                              backend=backend, budget=GENEROUS)
    assert bounded == unbounded


@pytest.mark.parametrize("seed", GENERATOR_SEEDS)
def test_generated_formulas_bounded_or_clean_error(seed):
    """The acceptance property over the 120-instance generator corpus
    (40 seeds x 3 sizes, same corpus as the plan differential suite):
    under a tight budget the plan backend either agrees exactly with the
    unbounded run or raises ResourceLimitExceeded — and afterwards the
    unbounded answer is still reachable (nothing was corrupted)."""
    generator = FormulaGenerator(seed)
    formula = generator.formula(depth=3, scope=FREE_VARIABLES)
    for size in (3, 4, 5):
        structure = random_alternating_graph(size, seed=seed)
        oracle = define_relation(formula, structure, FREE_VARIABLES,
                                 backend="plan")
        stats = PlanStats()
        try:
            bounded = define_relation(formula, structure, FREE_VARIABLES,
                                      backend="plan", budget=TIGHT,
                                      stats=stats)
        except ResourceLimitExceeded as error:
            # Partial progress must ride on the error.
            assert error.stats is stats
        else:
            assert bounded == oracle, f"budget changed the answer, seed={seed}"
        # Never a corrupted engine: the unbounded re-run still agrees.
        assert define_relation(formula, structure, FREE_VARIABLES,
                               backend="plan") == oracle


# ------------------------------------------------------------ which limits


def _tc_structure(size: int = 24):
    return random_alternating_graph(size, edge_probability=0.2, seed=5)


def test_row_limit_trips_on_a_real_query():
    formula = CANONICAL_QUERIES["tc"].formula()
    with pytest.raises(RowLimitExceeded) as info:
        define_relation(formula, _tc_structure(), ("u", "v"), backend="plan",
                        budget=Budget(max_rows_materialized=3))
    assert info.value.resource == "rows_materialized"


def test_round_limit_trips_on_a_deep_fixpoint():
    # A path graph needs one closure round per hop.
    from repro.structures import path_graph
    formula = CANONICAL_QUERIES["tc"].formula()
    with pytest.raises(FixpointRoundLimitExceeded):
        define_relation(formula, path_graph(32), ("u", "v"), backend="plan",
                        budget=Budget(max_fixpoint_rounds=1))


def test_deadline_trips_mid_query():
    formula = CANONICAL_QUERIES["apath"].formula()
    with pytest.raises(DeadlineExceeded):
        define_relation(formula, _tc_structure(40), ("u", "v"),
                        backend="plan",
                        budget=Budget(deadline_seconds=0.0,
                                      check_interval=1))


def test_pre_cancelled_token_stops_both_backends():
    token = CancelToken()
    token.cancel()
    budget = Budget(cancel_token=token, check_interval=1)
    formula = CANONICAL_QUERIES["tc"].formula()
    structure = _tc_structure(8)
    for backend in ("plan", "tuple"):
        with pytest.raises(EvaluationCancelled):
            define_relation(formula, structure, ("u", "v"),
                            backend=backend, budget=budget)


def test_memo_limit_trips_through_the_checker():
    checker = ModelChecker(_tc_structure(8), backend="tuple",
                           budget=Budget(max_memo_entries=0))
    with pytest.raises(MemoLimitExceeded):
        checker.evaluate(CANONICAL_QUERIES["tc"].formula(),
                         {"u": 0, "v": 1})


def test_domain_product_is_refused_before_materializing():
    """check_rows_ahead: the n^k enumeration is refused up front, not
    after allocating it."""
    from repro.logic.formula import TrueFormula
    structure = random_alternating_graph(64, seed=1)
    with pytest.raises(RowLimitExceeded):
        define_relation(TrueFormula(), structure, ("u", "v"), backend="plan",
                        budget=Budget(max_rows_materialized=100))


# -------------------------------------------------- restore on exception


def test_checker_state_is_restored_after_a_budget_abort():
    structure = _tc_structure(16)
    checker = ModelChecker(structure, backend="plan",
                           budget=Budget(max_rows_materialized=3))
    aux_before = dict(checker.auxiliary)
    cache_before = set(checker._fixpoint_cache)
    with pytest.raises(ResourceLimitExceeded):
        checker.evaluate(CANONICAL_QUERIES["tc"].formula(), {"u": 0, "v": 1})
    assert checker.auxiliary == aux_before
    assert set(checker._fixpoint_cache) == cache_before


def test_same_checker_answers_correctly_after_an_abort():
    structure = _tc_structure(12)
    formula = CANONICAL_QUERIES["tc"].formula()
    oracle = ModelChecker(structure, backend="tuple").evaluate(
        formula, {"u": 0, "v": 1})
    token = CancelToken()
    checker = ModelChecker(structure, backend="plan",
                           budget=Budget(cancel_token=token,
                                         check_interval=1))
    token.cancel()
    with pytest.raises(EvaluationCancelled):
        checker.evaluate(formula, {"u": 0, "v": 1})
    # Un-cancel by replacing the budget: the same checker, warm or not,
    # must now produce the oracle answer.
    checker.budget = None
    assert checker.evaluate(formula, {"u": 0, "v": 1}) == oracle


# ----------------------------------------------------------- session level


def test_session_budget_threads_into_the_logic_facade():
    session = Session(budget=Budget(max_rows_materialized=3))
    structure = _tc_structure(16)
    with pytest.raises(RowLimitExceeded):
        session.define_relation(CANONICAL_QUERIES["tc"].formula(),
                                structure, ("u", "v"))


def test_session_budget_threads_into_evaluate_formula():
    token = CancelToken()
    token.cancel()
    session = Session(budget=Budget(cancel_token=token, check_interval=1))
    with pytest.raises(EvaluationCancelled):
        session.evaluate_formula(CANONICAL_QUERIES["tc"].formula(),
                                 _tc_structure(8), {"u": 0, "v": 1})


def test_session_run_respects_the_deadline():
    """The budget governs the SRL execution backends too, not just the
    logic layer."""
    from repro.core import parse_program
    from repro.core.engine import database_from_json

    program = parse_program(
        "(set-reduce S (lambda (x e) x) (lambda (a r) (insert a r))"
        " emptyset emptyset)"
    )
    database = database_from_json({"S": list(range(50))})
    for backend in ("compiled", "interp"):
        session = Session(program, backend=backend,
                          budget=Budget(deadline_seconds=0.0,
                                        check_interval=1))
        with pytest.raises(DeadlineExceeded):
            session.run(database)


def test_session_stays_usable_after_resource_abort():
    structure = _tc_structure(12)
    formula = CANONICAL_QUERIES["tc"].formula()
    oracle = define_relation(formula, structure, ("u", "v"), backend="tuple")
    session = Session(budget=Budget(max_rows_materialized=3))
    with pytest.raises(RowLimitExceeded):
        session.define_relation(formula, structure, ("u", "v"))
    session.budget = None
    assert session.define_relation(formula, structure, ("u", "v")) == oracle
