"""The plan / tuple differential suite (PR 4 acceptance, extended by the
PR 5 optimizer and the P7 columnar backend).

The set-at-a-time plan backend must be *observationally identical* to the
tuple-at-a-time enumeration it bypasses — the optimized plan to the raw
compiled plan it rewrites — and the columnar codegen backend to all of
them.  Two layers of evidence:

* every canonical Figure-1 query (the :data:`CANONICAL_QUERIES` registry:
  TC, DTC, the APATH/GAP fixed points, the counting queries, the
  complement queries) over seeded random structures, checked end-to-end
  through ``define_relation`` and ``evaluate`` on every backend;

* a hypothesis-style random formula generator — seeded, bounded depth,
  exercising **every** formula constructor (atoms over both relation
  symbols, constants, =, <=, ~, /\\, \\/, ->, exists, forall, counting
  quantifiers, TC, DTC, LFP with auxiliary references, and nesting of all
  of the above) — driving well over 100 ``(formula, structure)``
  instances run **four ways**: columnar codegen, optimizer-on plan,
  optimizer-off plan, and the tuple oracle.  All four defined relations
  must agree exactly, and the optimized execution must materialize no
  more rows than the raw plan (the optimizer's whole point, pinned as an
  invariant).  Governed (budget-limited) instances must, on every
  backend, either match the oracle or raise a clean
  :class:`ResourceLimitExceeded` — never a wrong answer.

The generator only produces well-formed formulas (fixed-point bodies
closed over their bound variables, matching arities), which is precisely
the fragment both backends define; everything else is a compile error by
design (see ``test_plan.py``).
"""

from __future__ import annotations

import random

import pytest

from repro.logic.eval import ModelChecker, define_relation
from repro.logic.plan import PlanStats
from repro.logic.formula import (
    And,
    CountAtLeast,
    DTCAtom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    LFPAtom,
    MAX,
    Not,
    Or,
    TCAtom,
    Term,
    TrueFormula,
    VarTerm,
    ZERO,
    aux,
    eq,
    leq,
    rel,
)
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures import random_alternating_graph

#: The top-level free variables every generated formula is defined over.
FREE_VARIABLES = ("u", "v")


# ------------------------------------------------- canonical query suite


@pytest.mark.parametrize("name", sorted(CANONICAL_QUERIES))
@pytest.mark.parametrize("size,seed", [(4, 0), (5, 1), (6, 2)])
def test_canonical_queries_agree(name, size, seed):
    query = CANONICAL_QUERIES[name]
    structure = random_alternating_graph(size, seed=seed)
    formula = query.formula()
    events = []
    columnar = define_relation(formula, structure, query.variables,
                               backend="columnar", optimize=True,
                               degradations=events)
    optimized = define_relation(formula, structure, query.variables,
                                backend="plan", optimize=True)
    raw = define_relation(formula, structure, query.variables,
                          backend="plan", optimize=False)
    slow = define_relation(formula, structure, query.variables,
                           backend="tuple")
    assert columnar == optimized == raw == slow
    # The canonical queries are all bitset/CSR-representable: the columnar
    # rung must have answered, not silently degraded to the interpreter.
    assert not [e for e in events if e.stage == "columnar"]


@pytest.mark.parametrize("name", sorted(CANONICAL_QUERIES))
def test_canonical_queries_agree_via_model_checker(name):
    query = CANONICAL_QUERIES[name]
    structure = random_alternating_graph(5, seed=7)
    formula = query.formula()
    assignment = dict(zip(query.variables, (0, structure.size - 1)))
    fast = ModelChecker(structure, backend="plan").evaluate(formula, assignment)
    cols = ModelChecker(structure, backend="columnar").evaluate(formula,
                                                               assignment)
    slow = ModelChecker(structure, backend="tuple").evaluate(formula, assignment)
    assert fast == cols == slow


# -------------------------------------------- the random formula generator


class FormulaGenerator:
    """A seeded random generator covering every formula constructor.

    ``scope`` is the tuple of first-order variables an atom may mention
    (so generated formulas never evaluate an unassigned variable), and
    ``aux_stack`` the fixed-point relations (name, arity) in scope for
    :func:`aux` atoms — mirroring exactly what the tuple evaluator's
    mutate-and-restore auxiliary handling permits.
    """

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.fresh = 0

    def fresh_name(self, prefix: str) -> str:
        self.fresh += 1
        return f"{prefix}{self.fresh}"

    def term(self, scope: tuple[str, ...]) -> Term:
        choices: list[Term] = [ZERO, MAX]
        choices.extend(VarTerm(name) for name in scope)
        # Weight towards variables so atoms actually constrain the scope.
        choices.extend(VarTerm(name) for name in scope)
        return self.rng.choice(choices)

    def atom(self, scope, aux_stack) -> Formula:
        kind = self.rng.randrange(6 if aux_stack else 5)
        if kind == 0:
            return rel("E", self.term(scope), self.term(scope))
        if kind == 1:
            return rel("A", self.term(scope))
        if kind == 2:
            return eq(self.term(scope), self.term(scope))
        if kind == 3:
            return leq(self.term(scope), self.term(scope))
        if kind == 4:
            return TrueFormula() if self.rng.random() < 0.5 else FalseFormula()
        name, arity = self.rng.choice(aux_stack)
        return aux(name, *(self.term(scope) for _ in range(arity)))

    def formula(self, depth: int, scope: tuple[str, ...],
                aux_stack: tuple[tuple[str, int], ...] = ()) -> Formula:
        if depth <= 0:
            return self.atom(scope, aux_stack)
        kind = self.rng.randrange(10)
        if kind == 0:
            return Not(self.formula(depth - 1, scope, aux_stack))
        if kind == 1:
            return And(tuple(self.formula(depth - 1, scope, aux_stack)
                             for _ in range(2)))
        if kind == 2:
            return Or(tuple(self.formula(depth - 1, scope, aux_stack)
                            for _ in range(2)))
        if kind == 3:
            return Implies(self.formula(depth - 1, scope, aux_stack),
                           self.formula(depth - 1, scope, aux_stack))
        if kind in (4, 5):
            variable = self.fresh_name("q")
            body = self.formula(depth - 1, scope + (variable,), aux_stack)
            return (Exists if kind == 4 else Forall)(variable, body)
        if kind == 6:
            variable = self.fresh_name("q")
            threshold = self.rng.choice([0, 1, 2, "half"])
            body = self.formula(depth - 1, scope + (variable,), aux_stack)
            return CountAtLeast(threshold, variable, body)
        if kind in (7, 8):
            # TC / DTC over 1-tuples: the body closes over exactly the two
            # bound variables (plus any auxiliary relations in scope).
            source, target = self.fresh_name("s"), self.fresh_name("t")
            body = self.formula(depth - 1, (source, target), aux_stack)
            operator = TCAtom if kind == 7 else DTCAtom
            return operator((source,), (target,), body,
                            (self.term(scope),), (self.term(scope),))
        # LFP: the body closes over the fixed-point variables and may
        # reference this (and any enclosing) fixed-point relation.
        relation = self.fresh_name("R")
        arity = self.rng.choice((1, 2))
        variables = tuple(self.fresh_name("f") for _ in range(arity))
        body = self.formula(depth - 1, variables,
                            aux_stack + ((relation, arity),))
        terms = tuple(self.term(scope) for _ in range(arity))
        return LFPAtom(relation, variables, body, terms)


#: 40 seeds x 3 sizes = 120 generated (formula, structure) instances.
GENERATOR_SEEDS = range(40)
GENERATOR_SIZES = (3, 4, 5)


@pytest.mark.parametrize("size", GENERATOR_SIZES)
@pytest.mark.parametrize("seed", GENERATOR_SEEDS)
def test_generated_formulas_agree(size, seed):
    """Four-way differential: columnar codegen == optimized plan == raw
    plan == tuple oracle, and the optimizer never materializes more rows
    than the raw plan."""
    generator = FormulaGenerator(seed)
    formula = generator.formula(depth=3, scope=FREE_VARIABLES)
    structure = random_alternating_graph(size, seed=seed)
    optimized_stats, raw_stats = PlanStats(), PlanStats()
    columnar = define_relation(formula, structure, FREE_VARIABLES,
                               backend="columnar", optimize=True)
    optimized = define_relation(formula, structure, FREE_VARIABLES,
                                backend="plan", optimize=True,
                                stats=optimized_stats)
    raw = define_relation(formula, structure, FREE_VARIABLES,
                          backend="plan", optimize=False, stats=raw_stats)
    slow = define_relation(formula, structure, FREE_VARIABLES, backend="tuple")
    assert columnar == optimized == raw == slow, \
        f"backend divergence on seed={seed}:\n{formula}"
    assert optimized_stats.rows_materialized <= raw_stats.rows_materialized, \
        f"optimizer materialized more rows on seed={seed}:\n{formula}"


@pytest.mark.parametrize("seed", range(10))
def test_generated_formulas_agree_under_naive_kernels(seed):
    """The plan backend composes with ``seminaive=False`` too: its
    fixed-point nodes then run the naive re-derive-everything kernels
    (delta-rewritten bodies included — they fall back to the kernel
    path)."""
    generator = FormulaGenerator(seed)
    formula = generator.formula(depth=3, scope=FREE_VARIABLES)
    structure = random_alternating_graph(4, seed=seed)
    results = {
        define_relation(formula, structure, FREE_VARIABLES,
                        backend=backend, seminaive=seminaive,
                        optimize=optimize)
        for backend in ("plan", "columnar", "tuple")
        for seminaive in (True, False)
        for optimize in (True, False)
    }
    assert len(results) == 1


@pytest.mark.parametrize("seed", range(8))
def test_generated_sentences_agree_pointwise(seed):
    """Spot-check ``evaluate`` (membership through the compiled relation)
    against the oracle on explicit assignments."""
    generator = FormulaGenerator(100 + seed)
    formula = generator.formula(depth=2, scope=FREE_VARIABLES)
    structure = random_alternating_graph(5, seed=seed)
    fast = ModelChecker(structure, backend="plan")
    cols = ModelChecker(structure, backend="columnar")
    slow = ModelChecker(structure, backend="tuple")
    for u in structure.universe:
        for v in (0, structure.size - 1):
            assignment = {"u": u, "v": v}
            assert fast.evaluate(formula, assignment) == \
                cols.evaluate(formula, assignment) == \
                slow.evaluate(formula, assignment)


# ------------------------------------- columnar fallback and governed runs


@pytest.mark.parametrize("seed", range(6))
def test_arity_three_fixpoints_fall_back_to_tuple_representation(seed):
    """An arity-3 LFP has no bitset/CSR representation: the codegen keeps
    those relations as tuple sets (recording the fallback) and must still
    agree with every other backend."""
    generator = FormulaGenerator(200 + seed)
    body_atom = generator.formula(depth=1, scope=("f1", "f2", "f3"),
                                  aux_stack=(("R3", 3),))
    formula = LFPAtom(
        "R3", ("f1", "f2", "f3"),
        Or((And((rel("E", "f1", "f2"), rel("E", "f2", "f3"))), body_atom)),
        (VarTerm("u"), VarTerm("v"), VarTerm("v")))
    structure = random_alternating_graph(4, seed=seed)
    columnar = define_relation(formula, structure, FREE_VARIABLES,
                               backend="columnar")
    optimized = define_relation(formula, structure, FREE_VARIABLES,
                                backend="plan", optimize=True)
    raw = define_relation(formula, structure, FREE_VARIABLES,
                          backend="plan", optimize=False)
    slow = define_relation(formula, structure, FREE_VARIABLES, backend="tuple")
    assert columnar == optimized == raw == slow


@pytest.mark.parametrize("max_rows", [1, 10, 100, 100_000])
@pytest.mark.parametrize("seed", range(6))
def test_governed_runs_agree_or_fail_cleanly(seed, max_rows):
    """Budget-limited four-way contract: on every backend a governed run
    either matches the (ungoverned) oracle or raises a clean
    :class:`ResourceLimitExceeded` — never a wrong answer."""
    from repro.core.errors import ResourceLimitExceeded
    from repro.core.governor import Budget

    generator = FormulaGenerator(300 + seed)
    formula = generator.formula(depth=3, scope=FREE_VARIABLES)
    structure = random_alternating_graph(4, seed=seed)
    oracle = define_relation(formula, structure, FREE_VARIABLES,
                             backend="tuple")
    for backend in ("columnar", "plan", "tuple"):
        for optimize in (True, False):
            try:
                got = define_relation(
                    formula, structure, FREE_VARIABLES, backend=backend,
                    optimize=optimize,
                    budget=Budget(max_rows_materialized=max_rows))
            except ResourceLimitExceeded:
                continue
            assert got == oracle, \
                f"governed {backend} diverged on seed={seed}:\n{formula}"
