"""The chunked (big-n) columnar interpreter: the four-way differential,
budget enforcement, and the degradation contract (P9 acceptance).

The dense per-plan code generator only runs below
``DENSE_WIDTH_THRESHOLD``; these tests monkeypatch the threshold the
``codegen`` module captured down to 2, so ordinary small structures —
including snapshot-loaded ones with packed mmap relations — exercise the
chunked interpreter while staying cheap enough to compare against the
plan backend and the tuple oracle on every query.
"""

from __future__ import annotations

import pytest

from repro.core.errors import MemoryLimitExceeded, ResourceLimitExceeded
from repro.core.governor import Budget
from repro.logic import codegen
from repro.logic.chunked import ChunkedUnsupported, execute_chunked
from repro.logic.codegen import (
    execute_columnar,
    last_report,
    set_max_columnar_universe,
)
from repro.logic.compile import compile_formula
from repro.logic.eval import define_relation
from repro.logic.plan import DomainProduct, PlanStats
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures import load_structure, save_snapshot
from repro.structures.graphs import random_graph
from repro.structures.zoo import clustered_graph, grid_graph, layered_dag

#: Queries whose chunked evaluation needs no Domain**2 materialization —
#: the production big-n set the interpreter must cover natively.
COVERED = ("tc", "dtc", "reach", "dreach", "count-reach", "half-out", "gap")


@pytest.fixture
def chunk_everything(monkeypatch):
    """Route every columnar execution through the chunked interpreter
    (codegen imported the threshold by value, so patch its copy)."""
    monkeypatch.setattr(codegen, "DENSE_WIDTH_THRESHOLD", 2)


def _relation(query, structure, backend, **kwargs):
    return define_relation(query.formula(), structure, query.variables,
                           backend=backend, **kwargs)


# ------------------------------------------------------------ differential


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("name", COVERED)
def test_four_way_differential(chunk_everything, tmp_path, name, seed):
    """columnar(chunked) == optimized plan == raw plan == tuple oracle,
    evaluated over a snapshot round-tripped structure."""
    query = CANONICAL_QUERIES[name]
    original = random_graph(7, edge_probability=0.3, seed=seed)
    save_snapshot(original, tmp_path / "g.snap")
    structure = load_structure(tmp_path / "g.snap")
    degradations: list = []
    chunked = _relation(query, structure, "columnar",
                        degradations=degradations)
    assert degradations == [], f"{name} degraded off the chunked path"
    assert chunked == _relation(query, structure, "plan")
    assert chunked == _relation(query, original, "plan", optimize=False)
    assert chunked == _relation(query, original, "tuple")


@pytest.mark.parametrize("make", [
    lambda: grid_graph(5, 5),
    lambda: layered_dag(4, 5, seed=3),
    lambda: clustered_graph(3, cluster_size=6, intra=12, seed=1),
])
def test_zoo_families_differential(chunk_everything, make):
    structure = make()
    for name in ("tc", "reach", "count-reach"):
        query = CANONICAL_QUERIES[name]
        assert _relation(query, structure, "columnar") \
            == _relation(query, structure, "tuple")


def test_chunked_backend_reported(chunk_everything):
    query = CANONICAL_QUERIES["tc"]
    structure = random_graph(6, seed=2)
    plan = compile_formula(query.formula(), query.variables)
    execute_columnar(plan, structure)
    report = last_report()
    assert report is not None
    assert report["backend"] == "chunked"
    assert report["tuple_fallbacks"] == []


# ------------------------------------------------------- budgets and stats


def test_bytes_resident_budget_bites(chunk_everything):
    query = CANONICAL_QUERIES["tc"]
    structure = clustered_graph(4, cluster_size=8, intra=20, seed=0)
    stats = PlanStats()
    with pytest.raises(MemoryLimitExceeded) as info:
        _relation(query, structure, "columnar", stats=stats,
                  budget=Budget(max_bytes_resident=64))
    assert isinstance(info.value, ResourceLimitExceeded)
    assert stats.bytes_resident > 64


def test_rows_budget_still_enforced(chunk_everything):
    query = CANONICAL_QUERIES["tc"]
    structure = clustered_graph(4, cluster_size=8, intra=20, seed=0)
    with pytest.raises(ResourceLimitExceeded):
        _relation(query, structure, "columnar",
                  budget=Budget(max_rows_materialized=3))


def test_chunked_notes_resident_bytes(chunk_everything):
    query = CANONICAL_QUERIES["tc"]
    structure = random_graph(8, edge_probability=0.4, seed=5)
    stats = PlanStats()
    _relation(query, structure, "columnar", stats=stats)
    assert stats.bytes_resident > 0
    assert stats.as_dict()["bytes_resident"] == stats.bytes_resident


# ------------------------------------------------------------- degradation


def test_unsupported_shapes_raise_chunked_unsupported():
    structure = random_graph(5, seed=1)
    with pytest.raises(ChunkedUnsupported):
        execute_chunked(DomainProduct(("x", "y")), structure)


def test_unsupported_shapes_degrade_to_the_plan_backend(chunk_everything):
    """non-reach compiles to a universe**2 complement: chunked refuses,
    the ladder records the degradation, and the answer stays exact."""
    query = CANONICAL_QUERIES["non-reach"]
    structure = random_graph(6, edge_probability=0.3, seed=4)
    degradations: list = []
    result = _relation(query, structure, "columnar", optimize=False,
                       degradations=degradations)
    assert result == _relation(query, structure, "tuple")
    assert any(event.stage == "columnar" and event.fallback == "plan"
               for event in degradations)


def test_resource_errors_never_degrade(chunk_everything):
    query = CANONICAL_QUERIES["tc"]
    structure = clustered_graph(4, cluster_size=8, intra=20, seed=0)
    degradations: list = []
    with pytest.raises(ResourceLimitExceeded):
        _relation(query, structure, "columnar",
                  budget=Budget(max_bytes_resident=64),
                  degradations=degradations)
    assert not any(event.stage == "columnar" for event in degradations)


# --------------------------------------------------------- the universe cap


def test_set_max_columnar_universe_round_trips():
    previous = set_max_columnar_universe(123)
    try:
        assert codegen.MAX_COLUMNAR_UNIVERSE == 123
        assert set_max_columnar_universe(previous) == 123
    finally:
        codegen.MAX_COLUMNAR_UNIVERSE = previous
    with pytest.raises(ValueError):
        set_max_columnar_universe(-1)


def test_cap_degrades_with_an_event():
    previous = set_max_columnar_universe(4)
    try:
        query = CANONICAL_QUERIES["reach"]
        structure = random_graph(6, edge_probability=0.3, seed=3)
        degradations: list = []
        result = _relation(query, structure, "columnar",
                           degradations=degradations)
        assert result == _relation(query, structure, "tuple")
        assert any(event.stage == "columnar"
                   and "columnar limit" in event.error
                   for event in degradations)
    finally:
        set_max_columnar_universe(previous)


# ----------------------------------------------------- the BFS select path


def test_pinned_closure_matches_full_closure(chunk_everything):
    """Select(Closure) with a pinned endpoint takes the single-source BFS
    fast path; reach/dreach answers must equal the tuple oracle's on a
    graph with rich structure (already covered above) *and* on edge
    cases: empty graphs and self-loops."""
    from repro.structures import graph_structure

    for edges in ([], [(0, 0)], [(0, 1), (1, 0)], [(1, 2), (2, 3)]):
        structure = graph_structure(4, edges)
        for name in ("reach", "dreach", "gap"):
            query = CANONICAL_QUERIES[name]
            assert _relation(query, structure, "columnar") \
                == _relation(query, structure, "tuple"), (name, edges)
