"""The chaos differential suite (PR 6 acceptance).

Under every injected fault — a raise, a delay, or corrupt-on-purpose
data at any registered injection point — the engine must either return
the **correct** answer (via the degradation ladder: optimized plan ->
raw plan -> tuple oracle) or raise a clean typed error.  Never a wrong
answer; never a corrupted index or session.

The tier-1 tests sweep every point x action over canonical queries; the
``slow``-marked sweep (the nightly chaos job) crosses the full registry
with the seeded random-formula corpus.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ResourceLimitExceeded
from repro.logic.eval import ModelChecker, define_relation
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures import random_alternating_graph
from repro.testing.chaos import INJECTION_POINTS, ChaosError, Fault
from test_plan_differential import FREE_VARIABLES, FormulaGenerator

#: Queries that between them exercise joins, LFP fixpoints, TC closures,
#: the full optimizer pipeline and the checker's memo stores.
CHAOS_QUERIES = ("tc", "apath")


def _oracle(name, structure):
    query = CANONICAL_QUERIES[name]
    return define_relation(query.formula(), structure, query.variables,
                           backend="tuple")


# ------------------------------------------------------------- the sweep


@pytest.mark.parametrize("backend", ["plan", "columnar"])
@pytest.mark.parametrize("action", ["raise", "corrupt"])
@pytest.mark.parametrize("point", INJECTION_POINTS)
def test_single_fault_never_changes_the_answer(point, action, backend,
                                               inject_faults):
    """One fault per run (the realistic case: one component hiccups once);
    the ladder's retry must land on the correct answer."""
    structure = random_alternating_graph(5, seed=3)
    for name in CHAOS_QUERIES:
        query = CANONICAL_QUERIES[name]
        expected = _oracle(name, structure)
        inject_faults(Fault(point, action=action))
        got = define_relation(query.formula(), structure, query.variables,
                              backend=backend)
        assert got == expected, f"fault at {point}/{action} changed {name}"


@pytest.mark.parametrize("backend", ["plan", "columnar"])
@pytest.mark.parametrize("action", ["raise", "corrupt"])
@pytest.mark.parametrize("point", INJECTION_POINTS)
def test_persistent_fault_never_changes_the_answer(point, action, backend,
                                                   inject_faults):
    """A fault that fires on *every* pass through its site (a hard-down
    component).  The ladder must still bottom out on the tuple oracle —
    which shares none of the plan backend's injection points — and agree."""
    structure = random_alternating_graph(5, seed=4)
    for name in CHAOS_QUERIES:
        query = CANONICAL_QUERIES[name]
        expected = _oracle(name, structure)
        inject_faults(Fault(point, action=action, max_fires=None))
        got = define_relation(query.formula(), structure, query.variables,
                              backend=backend)
        assert got == expected, f"fault at {point}/{action} changed {name}"


def test_the_sweep_actually_fires_every_point(inject_faults):
    """Coverage honesty: each registered point must trigger for at least
    one of the sweep queries, else the suite above proves nothing about
    that seam.  (``engine.memo.store`` only exists on the memoizing
    checker path, so the probe runs through :class:`ModelChecker`.)"""
    structure = random_alternating_graph(5, seed=3)
    for point in INJECTION_POINTS:
        fired_anywhere = False
        if point.startswith("service."):
            # The service points live in the query-service layer, not the
            # evaluation ladder: probe each at its own seam (P10).
            policy = inject_faults(Fault(point, max_fires=None))
            if point == "service.worker.crash":
                from repro.service.worker import Worker

                with pytest.raises(ChaosError):
                    Worker().handle({"op": "query", "structure": "g",
                                     "query": "tc"})
            elif point == "service.net.drop":
                from repro.core.errors import ProtocolError
                from repro.service.protocol import encode_frame

                with pytest.raises(ProtocolError):
                    encode_frame({"op": "ping"})
            else:  # service.queue.overflow
                from repro.core.errors import Overloaded
                from repro.service.admission import AdmissionController

                with pytest.raises(Overloaded):
                    with AdmissionController().slot():
                        pass
            fired_anywhere = bool(policy.fired)
        elif point.startswith("ivm."):
            # The maintenance points only exist on the update path: memoize
            # TC over a path, then delete a middle edge (a real over-delete,
            # so the DRed points both run).
            from repro.structures import Changeset, path_graph

            policy = inject_faults(Fault(point, max_fires=None))
            checker = ModelChecker(path_graph(5), backend="plan")
            checker.defined_relation(CANONICAL_QUERIES["tc"].formula())
            checker.apply_update(Changeset.deleting("E", (1, 2)))
            fired_anywhere = bool(policy.fired)
        else:
            for name in CHAOS_QUERIES:
                query = CANONICAL_QUERIES[name]
                policy = inject_faults(Fault(point, max_fires=None))
                checker = ModelChecker(structure, backend="plan")
                checker.evaluate(query.formula(),
                                 dict.fromkeys(query.variables, 0))
                fired_anywhere = fired_anywhere or bool(policy.fired)
        assert fired_anywhere, f"no sweep query reaches {point}"


# ------------------------------------------------- ladder rung by rung


def test_optimizer_crash_falls_back_to_the_raw_plan(inject_faults):
    structure = random_alternating_graph(6, seed=0)
    expected = _oracle("tc", structure)
    inject_faults(Fault("optimize.pass.reorder"))
    checker = ModelChecker(structure, backend="plan")
    query = CANONICAL_QUERIES["tc"]
    assert {row for row in expected
            if checker.evaluate(query.formula(),
                                dict(zip(query.variables, row)))} == expected
    stages = [(e.stage, e.fallback) for e in checker.degradations]
    assert ("optimize", "raw-plan") in stages
    # The raw plan answered: no further rung was dropped.
    assert ("plan", "tuple") not in stages


def test_corrupt_optimizer_output_is_caught_by_the_invariant(inject_faults):
    """A pass that silently rewrites the plan to the wrong shape must be
    caught by the optimizer's output-columns invariant, not returned."""
    structure = random_alternating_graph(5, seed=1)
    expected = _oracle("tc", structure)
    inject_faults(Fault("optimize.pass.prune", action="corrupt"))
    got = define_relation(CANONICAL_QUERIES["tc"].formula(), structure,
                          ("u", "v"), backend="plan")
    assert got == expected


def test_plan_crash_falls_back_to_the_tuple_oracle(inject_faults):
    structure = random_alternating_graph(5, seed=2)
    query = CANONICAL_QUERIES["apath"]
    expected = _oracle("apath", structure)
    # Both plan rungs die (the fault persists); only the oracle is left.
    inject_faults(Fault("plan.fixpoint.round", max_fires=None))
    checker = ModelChecker(structure, backend="plan")
    got = {row for row in
           ((u, v) for u in structure.universe for v in structure.universe)
           if checker.evaluate(query.formula(), dict(zip(query.variables, row)))}
    assert got == expected
    assert ("plan", "tuple") in \
        {(e.stage, e.fallback) for e in checker.degradations}


def test_corrupt_probe_relation_is_caught_by_the_index_build(inject_faults):
    """The corrupt payload at ``relalg.join.probe`` (an empty row smuggled
    into the probe side) must break the index build loudly, never join
    silently."""
    structure = random_alternating_graph(6, seed=5)
    expected = _oracle("apath", structure)
    inject_faults(Fault("relalg.join.probe", action="corrupt"))
    got = define_relation(CANONICAL_QUERIES["apath"].formula(), structure,
                          ("u", "v"), backend="plan")
    assert got == expected


def test_corrupt_memo_store_is_skipped_not_cached(inject_faults):
    structure = random_alternating_graph(5, seed=6)
    query = CANONICAL_QUERIES["tc"]
    expected = _oracle("tc", structure)
    inject_faults(Fault("engine.memo.store", action="corrupt"))
    checker = ModelChecker(structure, backend="plan")
    assignment = dict(zip(query.variables, (0, structure.size - 1)))
    first = checker.evaluate(query.formula(), assignment)
    assert ("memo", "no-memo") in \
        {(e.stage, e.fallback) for e in checker.degradations}
    # The poisoned entry was dropped, so the re-evaluation recomputes —
    # and agrees with both the first answer and the oracle.
    second = checker.evaluate(query.formula(), assignment)
    assert first == second == (tuple(assignment.values()) in expected)


def test_chaos_errors_surface_when_there_is_no_ladder(inject_faults):
    """Outside the ladder (a raw kernel call, no fallback), an injected
    fault is a clean typed error — not silence, not a wrong answer."""
    from repro.logic.compile import compile_formula
    from repro.logic.plan import ExecutionContext

    structure = random_alternating_graph(5, seed=7)
    plan = compile_formula(CANONICAL_QUERIES["apath"].formula(), ("u", "v"))
    inject_faults(Fault("plan.fixpoint.round"))
    with pytest.raises(ChaosError):
        plan.execute(ExecutionContext(structure, {}, True))


def test_session_survives_a_chaotic_query_intact(inject_faults):
    """Never a corrupted session: after a chaos-ridden run, the same
    checker with chaos disarmed still answers from-scratch correctly."""
    from repro.testing.chaos import uninstall_policy

    structure = random_alternating_graph(6, seed=8)
    query = CANONICAL_QUERIES["tc"]
    expected = _oracle("tc", structure)
    checker = ModelChecker(structure, backend="plan")
    inject_faults(Fault("*", max_fires=None))
    assignment = dict(zip(query.variables, (0, structure.size - 1)))
    chaotic = checker.evaluate(query.formula(), assignment)
    uninstall_policy()
    clean = checker.evaluate(query.formula(), assignment)
    assert chaotic == clean == (tuple(assignment.values()) in expected)


# ---------------------------------------------------- nightly full sweep


@pytest.mark.slow
@pytest.mark.parametrize("action", ["raise", "corrupt", "delay"])
@pytest.mark.parametrize("point", INJECTION_POINTS)
@pytest.mark.parametrize("seed", range(10))
def test_generated_formulas_survive_every_fault(point, action, seed,
                                                inject_faults):
    """The nightly corpus: seeded random formulas (every constructor the
    differential generator covers) x every injection point x every
    action, single-shot and persistent.  Zero wrong answers allowed."""
    generator = FormulaGenerator(seed)
    formula = generator.formula(depth=3, scope=FREE_VARIABLES)
    structure = random_alternating_graph(4, seed=seed)
    expected = define_relation(formula, structure, FREE_VARIABLES,
                               backend="tuple")
    for max_fires in (1, None):
        inject_faults(Fault(point, action=action, delay_seconds=0.001,
                            max_fires=max_fires), seed=seed)
        try:
            got = define_relation(formula, structure, FREE_VARIABLES,
                                  backend="plan")
        except ResourceLimitExceeded:
            pytest.fail("no budget was set: nothing may raise a limit")
        assert got == expected, \
            f"seed={seed} {point}/{action} max_fires={max_fires}:\n{formula}"
