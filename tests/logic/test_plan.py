"""Unit tests for the logic layer's relational-plan pipeline: the plan IR
(:mod:`repro.logic.plan`), the formula → plan compiler
(:mod:`repro.logic.compile`), the formula pretty-printer, the Session
facade's logic backend selection, the migrated plan-backed consumers, and
the ``python -m repro logic`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as cli_main
from repro.core.engine import Session
from repro.logic.compile import PlanCompilationError, compile_formula, explain
from repro.logic.eval import ModelChecker, define_relation, evaluate
from repro.logic.formula import (
    DTCAtom,
    LFPAtom,
    MAX,
    TCAtom,
    ZERO,
    and_,
    aux,
    count_at_least,
    eq,
    exists,
    forall,
    implies,
    leq,
    neg,
    or_,
    pretty,
    rel,
    var,
)
from repro.logic.plan import (
    Closure,
    Difference,
    DomainProduct,
    ExecutionContext,
    Fixpoint,
    Join,
    Project,
    Union,
)
from repro.logic.queries import CANONICAL_QUERIES, apath_lfp, reachability_tc
from repro.queries.agap import agap_plan, apath_baseline, apath_plan
from repro.queries.transitive_closure import (
    transitive_closure_baseline,
    transitive_closure_plan,
)
from repro.structures import (
    Structure,
    Vocabulary,
    graph_structure,
    path_graph,
    random_alternating_graph,
    random_graph,
)


class TestPlanStructure:
    def test_columns_are_sorted_free_variables(self):
        plan = compile_formula(and_(rel("E", "b", "a"), rel("E", "a", "c")))
        assert plan.columns == ("a", "b", "c")

    def test_explicit_layout_pads_and_reorders(self):
        plan = compile_formula(rel("E", "y", "x"), variables=("z", "x", "y"))
        assert plan.columns == ("z", "x", "y")
        g = path_graph(3)
        rows = set(plan.execute(ExecutionContext(g)).rows)
        # z ranges over the whole domain; (y, x) is a reversed edge.
        assert rows == {(z, x, y) for z in range(3) for y, x in g.relation("E")}

    def test_conjunction_compiles_to_a_join(self):
        plan = compile_formula(
            exists("z", and_(rel("E", "x", "z"), rel("E", "z", "y")))
        )
        assert isinstance(plan, Project)
        assert any(isinstance(node, Join) for node in _walk(plan))

    def test_negation_compiles_to_domain_difference(self):
        plan = compile_formula(neg(rel("E", "x", "y")))
        assert isinstance(plan, Difference)
        assert isinstance(plan.left, DomainProduct)
        assert plan.columns == ("x", "y")

    def test_negation_pushes_through_connectives(self):
        # ~(E(x,y) /\ E(y,x)) becomes a union of complements, not one big
        # complement of a join.
        plan = compile_formula(neg(and_(rel("E", "x", "y"), rel("E", "y", "x"))))
        assert isinstance(plan, Union)

    def test_double_negation_cancels(self):
        formula = rel("E", "x", "y")
        assert compile_formula(neg(neg(formula))) is compile_formula(formula)

    def test_fixpoint_and_closure_nodes(self):
        lfp_plan = compile_formula(apath_lfp(var("u"), var("v")))
        assert any(isinstance(node, Fixpoint) for node in _walk(lfp_plan))
        tc_plan = compile_formula(reachability_tc())
        closures = [node for node in _walk(tc_plan) if isinstance(node, Closure)]
        assert len(closures) == 1 and not closures[0].deterministic

    def test_compilation_is_memoized_per_formula(self):
        formula = exists("z", and_(rel("E", "x", "z"), rel("E", "z", "y")))
        assert compile_formula(formula) is compile_formula(formula)

    def test_explain_includes_formula_and_plan(self):
        text = explain(reachability_tc())
        assert "TC[(x) -> (y)]" in text       # the pretty-printed formula
        assert "Closure[TC, k=1]" in text     # the plan tree
        assert "Scan E" in text


class TestPlanSemantics:
    def test_constants_and_repeated_variables(self):
        g = graph_structure(3, [(0, 0), (0, 2), (1, 1)])
        loops = define_relation(rel("E", "x", "x"), g, ("x",), backend="plan")
        assert loops == {(0,), (1,)}
        from_zero = define_relation(rel("E", ZERO, "y"), g, ("y",), backend="plan")
        assert from_zero == {(0,), (2,)}
        # A fully constant atom defines a sentence over zero columns.
        assert evaluate(rel("E", ZERO, MAX), g, backend="plan")
        assert not evaluate(rel("E", MAX, ZERO), g, backend="plan")

    def test_order_atoms(self):
        g = path_graph(4)
        le = define_relation(leq("x", "y"), g, ("x", "y"), backend="plan")
        assert le == {(x, y) for x in range(4) for y in range(4) if x <= y}

    def test_vacuous_quantifier(self):
        g = path_graph(3)
        formula = exists("z", rel("E", "x", "y"))  # z unused in the body
        assert define_relation(formula, g, ("x", "y"), backend="plan") == \
            define_relation(formula, g, ("x", "y"), backend="tuple")

    def test_counting_zero_threshold_is_vacuously_true(self):
        g = graph_structure(3, [])
        formula = count_at_least(0, "y", rel("E", "x", "y"))
        assert define_relation(formula, g, ("x",), backend="plan") == \
            {(x,) for x in range(3)}

    def test_counting_half_threshold(self):
        s = Structure(Vocabulary.of(U=1), 6, {"U": frozenset({(0,), (2,), (4,)})})
        formula = count_at_least("half", "x", rel("U", "x"))
        assert evaluate(formula, s, backend="plan")
        assert not evaluate(count_at_least(4, "x", rel("U", "x")), s,
                            backend="plan")

    def test_explicit_auxiliary_relations(self):
        g = path_graph(3)
        checker = ModelChecker(g, {"R": frozenset({(0, 1)})}, backend="plan")
        assert checker.evaluate(aux("R", "x", "y"), {"x": 0, "y": 1})
        assert not checker.evaluate(aux("R", "x", "y"), {"x": 1, "y": 0})
        # Unknown auxiliary names read as empty, like the tuple oracle.
        assert not checker.evaluate(aux("S", "x"), {"x": 0})

    def test_out_of_universe_auxiliary_rows_are_unobservable(self):
        # The tuple oracle only ever tests in-universe tuples, so rows
        # outside the universe must not leak into counts, joins or
        # closures set-at-a-time either.
        g = path_graph(3)
        auxiliary = {"S": frozenset({(0, 99)})}
        formula = count_at_least(1, "y", aux("S", "u", "y"))
        for backend in ("plan", "tuple"):
            checker = ModelChecker(g, auxiliary, backend=backend)
            assert not checker.evaluate(formula, {"u": 0}), backend
        # ... and inside a TC body the stray row must not crash the
        # closure's successor map (it used to raise KeyError).
        closure = TCAtom(("s",), ("t",), aux("S", "s", "t"), (ZERO,), (MAX,))
        for backend in ("plan", "tuple"):
            checker = ModelChecker(g, auxiliary, backend=backend)
            assert not checker.evaluate(closure), backend

    def test_unassigned_variable_raises_like_the_oracle(self):
        with pytest.raises(KeyError):
            evaluate(rel("E", "x", "y"), path_graph(3), {"x": 0}, backend="plan")

    def test_memoize_false_recomputes(self):
        g = random_graph(5, seed=2)
        formula = reachability_tc(var("u"), var("v"))
        fast = ModelChecker(g, memoize=False, backend="plan")
        slow = ModelChecker(g, memoize=True, backend="plan")
        assignment = {"u": 0, "v": 4}
        assert fast.evaluate(formula, assignment) == \
            slow.evaluate(formula, assignment)

    def test_unknown_backend_rejected(self):
        g = path_graph(2)
        with pytest.raises(ValueError):
            ModelChecker(g, backend="setatatime")
        with pytest.raises(ValueError):
            define_relation(rel("E", "x", "y"), g, ("x", "y"), backend="nope")


class TestCompilationErrors:
    def test_open_lfp_body_is_rejected_with_pretty_context(self):
        bad = LFPAtom("R", ("x",), rel("E", "x", "y"), (ZERO,))
        with pytest.raises(PlanCompilationError) as excinfo:
            compile_formula(bad)
        message = str(excinfo.value)
        assert "'y'" in message
        assert "E(x, y)" in message           # the pretty-printed body

    def test_open_tc_body_is_rejected(self):
        bad = TCAtom(("s",), ("t",), rel("E", "s", "w"), (ZERO,), (MAX,))
        with pytest.raises(PlanCompilationError):
            compile_formula(bad)

    def test_arity_mismatches_are_rejected(self):
        with pytest.raises(PlanCompilationError):
            compile_formula(LFPAtom("R", ("x", "y"), aux("R", "x", "y"), (ZERO,)))
        with pytest.raises(PlanCompilationError):
            compile_formula(DTCAtom(("s",), ("t", "t2"), rel("E", "s", "t"),
                                    (ZERO,), (MAX,)))

    def test_layout_must_cover_the_free_variables(self):
        with pytest.raises(PlanCompilationError):
            compile_formula(rel("E", "x", "y"), variables=("x",))

    def test_pretty_renders_all_node_kinds(self):
        formula = forall("x", implies(
            rel("A", "x"),
            or_(count_at_least("half", "y", rel("E", "x", "y")),
                neg(eq("x", ZERO)))))
        text = pretty(formula)
        assert "forall x." in text
        assert "exists>=half y." in text
        assert "A(x)" in text
        # Indentation grows with nesting depth.
        assert "\n    " in text


class TestSessionFacade:
    def test_production_backends_pick_the_planner(self):
        assert Session().logic_backend == "plan"
        assert Session(backend="interp").logic_backend == "plan"
        assert Session(backend="reference").logic_backend == "tuple"

    def test_session_define_relation_agrees_across_backends(self):
        g = random_alternating_graph(5, seed=3)
        formula = apath_lfp(var("u"), var("v"))
        production = Session().define_relation(formula, g, ("u", "v"))
        oracle = Session(backend="reference").define_relation(formula, g,
                                                              ("u", "v"))
        assert production == oracle == apath_baseline(g)

    def test_session_evaluate_formula(self):
        g = random_graph(5, seed=1)
        sentence = reachability_tc()
        assert Session().evaluate_formula(sentence, g) == \
            Session(backend="reference").evaluate_formula(sentence, g)


class TestMigratedConsumers:
    @pytest.mark.parametrize("seed", range(3))
    def test_apath_plan_matches_baseline(self, seed):
        g = random_alternating_graph(6, seed=seed)
        assert apath_plan(g) == apath_baseline(g)
        assert agap_plan(g) == ((0, g.size - 1) in apath_baseline(g))

    @pytest.mark.parametrize("deterministic", (False, True))
    def test_transitive_closure_plan_matches_baseline(self, deterministic):
        g = random_graph(6, seed=4)
        assert transitive_closure_plan(g, deterministic=deterministic) == \
            transitive_closure_baseline(g, deterministic=deterministic)

    def test_registry_queries_are_well_formed(self):
        for name, query in CANONICAL_QUERIES.items():
            plan = compile_formula(query.formula(), query.variables)
            assert plan.columns == query.variables, name


class TestLogicCLI:
    def _write_structure(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text(json.dumps({"D": [0, 1, 2, 3],
                                    "E": [[0, 1], [1, 2], [2, 3]]}))
        return path

    def test_relation_query(self, tmp_path, capsys):
        path = self._write_structure(tmp_path)
        assert cli_main(["logic", "tc", "--structure", str(path)]) == 0
        output = capsys.readouterr().out
        assert "columns:     (u, v)" in output
        assert "rows:        10" in output

    def test_sentence_query_on_both_backends(self, tmp_path, capsys):
        path = self._write_structure(tmp_path)
        for backend in ("plan", "tuple"):
            assert cli_main(["logic", "reach", "--structure", str(path),
                             "--backend", backend]) == 0
            assert "result:      True" in capsys.readouterr().out

    def test_explain_flag(self, tmp_path, capsys):
        path = self._write_structure(tmp_path)
        assert cli_main(["logic", "dreach", "--structure", str(path),
                         "--explain"]) == 0
        output = capsys.readouterr().out
        assert "Closure[DTC, k=1]" in output

    def test_list_and_errors(self, tmp_path, capsys):
        assert cli_main(["logic", "--list"]) == 0
        assert "tc" in capsys.readouterr().out
        assert cli_main(["logic", "unknown-query",
                         "--structure", "nope.json"]) == 2
        assert cli_main(["logic", "tc"]) == 2
        missing = tmp_path / "missing.json"
        assert cli_main(["logic", "tc", "--structure", str(missing)]) == 2


def _walk(plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)
