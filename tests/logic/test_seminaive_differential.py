"""The semi-naive / naive differential suite (PR 3 acceptance).

The semi-naive fixed-point strategy must be *observationally identical* to
the naive re-derive-everything strategy it replaces.  This suite pins that
down on seeded random instances of every fixed-point shape the logic layer
evaluates — TC, DTC and LFP — plus the AGAP baseline's alternating fixed
point: well over 50 instances in total, each checked end-to-end through
``define_relation`` (TC/DTC/LFP formulas over random graphs) or the query
baselines.

``seminaive=False`` routes the identical computation through the naive
kernels (the strategy the ``reference`` backend keeps), so any divergence
is a bug in the delta propagation itself, not in workload construction.
"""

from __future__ import annotations

import pytest

from repro.logic.eval import ModelChecker, define_relation
from repro.logic.formula import (
    DTCAtom,
    LFPAtom,
    TCAtom,
    and_,
    aux,
    eq,
    exists,
    forall,
    neg,
    or_,
    rel,
    var,
)
from repro.queries.agap import apath_baseline
from repro.queries.transitive_closure import transitive_closure_baseline
from repro.structures import (
    functional_graph,
    layered_graph,
    random_alternating_graph,
    random_graph,
)

# 3 sizes x 6 seeds = 18 instances per operator family (54 for TC+DTC+LFP),
# plus the DTC/functional, layered-LFP and AGAP families below.
SIZES = (4, 5, 6)
SEEDS = range(6)
GRIDS = [(size, seed) for size in SIZES for seed in SEEDS]


def _tc_formula() -> TCAtom:
    return TCAtom(("x",), ("y",), rel("E", "x", "y"), (var("u"),), (var("v"),))


def _dtc_formula() -> DTCAtom:
    return DTCAtom(("x",), ("y",), rel("E", "x", "y"), (var("u"),), (var("v"),))


def _lfp_reachability() -> LFPAtom:
    body = or_(
        eq("x", "y"),
        exists("z", and_(rel("E", "x", "z"), aux("R", "z", "y"))),
    )
    return LFPAtom("R", ("x", "y"), body, (var("u"), var("v")))


def _lfp_alternating() -> LFPAtom:
    """An LFP whose body mixes both quantifiers — the all-successors-reach
    shape of AGAP (every vertex universal), exercising deltas that arrive
    from universal premises."""
    body = or_(
        eq("x", "y"),
        and_(
            exists("z", rel("E", "x", "z")),
            forall("z", or_(neg(rel("E", "x", "z")), aux("R", "z", "y"))),
        ),
    )
    return LFPAtom("R", ("x", "y"), body, (var("u"), var("v")))


@pytest.mark.parametrize("size,seed", GRIDS)
def test_tc_instances_agree(size, seed):
    graph = random_graph(size, edge_probability=0.3, seed=seed)
    formula = _tc_formula()
    fast = define_relation(formula, graph, ("u", "v"), seminaive=True)
    slow = define_relation(formula, graph, ("u", "v"), seminaive=False)
    assert fast == slow
    assert fast == transitive_closure_baseline(graph)


@pytest.mark.parametrize("size,seed", GRIDS)
def test_dtc_instances_agree(size, seed):
    graph = random_graph(size, edge_probability=0.3, seed=seed)
    formula = _dtc_formula()
    fast = define_relation(formula, graph, ("u", "v"), seminaive=True)
    slow = define_relation(formula, graph, ("u", "v"), seminaive=False)
    assert fast == slow
    assert fast == transitive_closure_baseline(graph, deterministic=True)


@pytest.mark.parametrize("size,seed", GRIDS)
def test_lfp_instances_agree(size, seed):
    graph = random_graph(size, edge_probability=0.3, seed=seed)
    formula = _lfp_reachability()
    fast = define_relation(formula, graph, ("u", "v"), seminaive=True)
    slow = define_relation(formula, graph, ("u", "v"), seminaive=False)
    assert fast == slow
    # The reachability LFP *is* the reflexive transitive closure.
    assert fast == transitive_closure_baseline(graph)


@pytest.mark.parametrize("seed", SEEDS)
def test_dtc_on_functional_graphs_agrees(seed):
    graph = functional_graph(7, seed=seed)
    formula = _dtc_formula()
    fast = define_relation(formula, graph, ("u", "v"), seminaive=True)
    slow = define_relation(formula, graph, ("u", "v"), seminaive=False)
    assert fast == slow == transitive_closure_baseline(graph, deterministic=True)


@pytest.mark.parametrize("seed", range(4))
def test_lfp_alternating_body_agrees(seed):
    graph = layered_graph(3, 2, seed=seed)
    formula = _lfp_alternating()
    fast = define_relation(formula, graph, ("u", "v"), seminaive=True)
    slow = define_relation(formula, graph, ("u", "v"), seminaive=False)
    assert fast == slow


@pytest.mark.parametrize("seed", SEEDS)
def test_apath_baseline_agrees_with_direct_iteration(seed):
    graph = random_alternating_graph(8, seed=seed)
    fast = apath_baseline(graph, seminaive=True)
    slow = apath_baseline(graph, seminaive=False)
    assert fast == slow
    assert fast == _apath_direct(graph)


def _apath_direct(structure):
    """The pre-kernel APATH loop (the seed's ad-hoc changed-flag iteration),
    kept here as the independent oracle for the migrated baseline."""
    edges = structure.relation("E")
    universal = {row[0] for row in structure.relation("A")}
    successors = {v: set() for v in structure.universe}
    for u, v in edges:
        successors[u].add(v)
    apath = {(v, v) for v in structure.universe}
    changed = True
    while changed:
        changed = False
        for x in structure.universe:
            for y in structure.universe:
                if (x, y) in apath or not successors[x]:
                    continue
                if x in universal:
                    holds = all((z, y) in apath for z in successors[x])
                else:
                    holds = any((z, y) in apath for z in successors[x])
                if holds:
                    apath.add((x, y))
                    changed = True
    return frozenset(apath)


class TestCheckerStrategyFlag:
    def test_evaluate_agrees_on_closed_formulas(self):
        graph = random_graph(6, edge_probability=0.25, seed=9)
        formula = _lfp_reachability()
        for assignment in ({"u": 0, "v": 5}, {"u": 2, "v": 2}, {"u": 5, "v": 0}):
            fast = ModelChecker(graph, seminaive=True).evaluate(formula, assignment)
            slow = ModelChecker(graph, seminaive=False).evaluate(formula, assignment)
            assert fast == slow

    def test_memoize_and_seminaive_compose(self):
        graph = random_graph(5, edge_probability=0.3, seed=1)
        formula = _tc_formula()
        results = {
            (memoize, seminaive): define_relation(
                formula, graph, ("u", "v"), memoize=memoize, seminaive=seminaive)
            for memoize in (True, False) for seminaive in (True, False)
        }
        assert len(set(results.values())) == 1
