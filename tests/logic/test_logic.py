"""Tests for the FO / LFP / TC / DTC / counting evaluator and EF games."""

from __future__ import annotations

import pytest

from repro.logic.eval import ModelChecker, define_relation, evaluate
from repro.logic.formula import (
    MAX,
    ZERO,
    and_,
    aux,
    count_at_least,
    eq,
    exists,
    forall,
    free_variables_of,
    implies,
    leq,
    neg,
    or_,
    rel,
)
from repro.logic.games import counting_ef_equivalent, ef_equivalent, is_partial_isomorphism
from repro.logic.interpretation import Interpretation, identity_interpretation
from repro.logic.queries import agap_formula, gap_formula, reachability_dtc, reachability_tc
from repro.queries.agap import agap_baseline
from repro.queries.transitive_closure import (
    deterministic_reachable_baseline,
    reachable_baseline,
)
from repro.structures import (
    GRAPH_VOCABULARY,
    Structure,
    Vocabulary,
    functional_graph,
    graph_structure,
    path_graph,
    random_alternating_graph,
    random_graph,
)


class TestFirstOrderEvaluation:
    def test_relation_atoms_and_constants(self):
        g = path_graph(3)
        assert evaluate(rel("E", ZERO, "x"), g, {"x": 1})
        assert not evaluate(rel("E", ZERO, MAX), g)

    def test_quantifiers(self):
        g = path_graph(4)
        has_edge_out = exists("y", rel("E", "x", "y"))
        assert evaluate(has_edge_out, g, {"x": 0})
        assert not evaluate(has_edge_out, g, {"x": 3})
        assert not evaluate(forall("x", exists("y", rel("E", "x", "y"))), g)

    def test_boolean_connectives(self):
        g = path_graph(3)
        assert evaluate(and_(rel("E", "x", "y"), neg(eq("x", "y"))), g, {"x": 0, "y": 1})
        assert evaluate(or_(eq("x", "y"), leq("x", "y")), g, {"x": 1, "y": 2})
        assert evaluate(implies(rel("E", "y", "x"), eq("x", "y")), g, {"x": 0, "y": 1})

    def test_unassigned_variable_raises(self):
        with pytest.raises(KeyError):
            evaluate(rel("E", "x", "y"), path_graph(3), {"x": 0})

    def test_free_variables(self):
        formula = exists("y", and_(rel("E", "x", "y"), eq("y", "z")))
        assert free_variables_of(formula) == {"x", "z"}

    def test_define_relation(self):
        g = path_graph(3)
        successors = define_relation(rel("E", "x", "y"), g, ("x", "y"))
        assert successors == g.relation("E")

    def test_counting_quantifier(self):
        s = Structure(Vocabulary.of(U=1), 6, {"U": frozenset({(0,), (2,), (4,)})})
        assert evaluate(count_at_least(3, "x", rel("U", "x")), s)
        assert not evaluate(count_at_least(4, "x", rel("U", "x")), s)
        # "half" is ceil(n/2) = 3 here.
        assert evaluate(count_at_least("half", "x", rel("U", "x")), s)


class TestFixedPointsAndClosures:
    @pytest.mark.parametrize("seed", range(4))
    def test_tc_matches_baseline(self, seed):
        g = random_graph(6, seed=seed)
        assert evaluate(reachability_tc(), g) == reachable_baseline(g)

    @pytest.mark.parametrize("seed", range(4))
    def test_dtc_matches_baseline(self, seed):
        g = functional_graph(6, seed=seed)
        assert evaluate(reachability_dtc(), g) == deterministic_reachable_baseline(g)

    def test_dtc_ignores_branching_vertices(self):
        g = graph_structure(3, [(0, 1), (0, 2), (1, 2)])
        # 0 has two successors so its edges do not count for DTC ...
        assert not evaluate(reachability_dtc(), g)
        # ... but plain TC still reaches the target.
        assert evaluate(reachability_tc(), g)

    def test_gap_via_lfp_agrees_with_tc(self):
        for seed in range(3):
            g = random_graph(5, seed=seed)
            assert evaluate(gap_formula(), g) == evaluate(reachability_tc(), g)

    @pytest.mark.parametrize("seed", range(4))
    def test_apath_lfp_matches_baseline(self, seed):
        g = random_alternating_graph(5, seed=seed)
        assert evaluate(agap_formula(), g) == agap_baseline(g)

    def test_lfp_with_explicit_auxiliary(self):
        g = path_graph(3)
        checker = ModelChecker(g, {"R": frozenset({(0, 1)})})
        assert checker.evaluate(aux("R", "x", "y"), {"x": 0, "y": 1})
        assert not checker.evaluate(aux("R", "x", "y"), {"x": 1, "y": 0})


class TestInterpretations:
    def test_identity_interpretation(self):
        g = path_graph(4)
        assert identity_interpretation(GRAPH_VOCABULARY).apply(g) == g

    def test_reversal_interpretation(self):
        reverse = Interpretation(
            k=1,
            target_vocabulary=GRAPH_VOCABULARY,
            relation_formulas={"E": (("x", "y"), rel("E", "y", "x"))},
        )
        g = path_graph(3)
        image = reverse.apply(g)
        assert image.relation("E") == frozenset({(1, 0), (2, 1)})

    def test_binary_interpretation_squares_the_universe(self):
        # Target universe = pairs; edge between (a,b) and (c,d) iff E(a,c).
        pairs = Interpretation(
            k=2,
            target_vocabulary=GRAPH_VOCABULARY,
            relation_formulas={"E": (("x1", "x2", "y1", "y2"), rel("E", "x1", "y1"))},
        )
        g = path_graph(2)
        image = pairs.apply(g)
        assert image.size == 4
        assert (0 * 2 + 0, 1 * 2 + 0) in image.relation("E")

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            Interpretation(
                k=2,
                target_vocabulary=GRAPH_VOCABULARY,
                relation_formulas={"E": (("x",), rel("E", "x", "x"))},
            )


class TestEFGames:
    def _pure_set(self, size: int) -> Structure:
        return Structure(Vocabulary.of(), size, {})

    def test_partial_isomorphism(self):
        g = path_graph(3)
        h = path_graph(3)
        assert is_partial_isomorphism(g, h, [0, 1], [0, 1])
        assert not is_partial_isomorphism(g, h, [0, 1], [1, 0])

    def test_large_pure_sets_agree_at_low_rank(self):
        # Fact 7.5's classical core: pure sets of size >= r are
        # EF_r-equivalent, so no fixed FO sentence defines EVEN.
        assert ef_equivalent(self._pure_set(4), self._pure_set(5), rounds=2)
        assert ef_equivalent(self._pure_set(3), self._pure_set(6), rounds=3)

    def test_small_pure_sets_are_separated(self):
        assert not ef_equivalent(self._pure_set(1), self._pure_set(2), rounds=2)

    def test_counting_game_separates_different_cardinalities(self):
        assert not counting_ef_equivalent(self._pure_set(3), self._pure_set(4), rounds=1)

    def test_counting_game_on_equal_pure_sets(self):
        assert counting_ef_equivalent(self._pure_set(3), self._pure_set(3), rounds=2)

    def test_ef_respects_relations(self):
        assert not ef_equivalent(path_graph(3), graph_structure(3, []), rounds=2)
