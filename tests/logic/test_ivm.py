"""Unit tests for the incremental-maintenance layer (P8).

Three levels, bottom up:

* the maintainability analysis in :mod:`repro.logic.optimize` — per-plan
  strategy verdicts, the base-relation derivative, core peeling;
* the columnar closure-patch kernels (``reach_from`` /
  ``patch_closure_insert`` / ``overdeleted_rows``) against the batch
  ``closure_adjacency`` oracle;
* the checker/session surface: ``ModelChecker.apply_update`` patches the
  memo (verified against full recompute), drops what it cannot maintain
  with a ``DegradationEvent("ivm", ...)``, and ``Session.update`` routes
  through the live checker.
"""

from __future__ import annotations

import random

import pytest

from repro.core.columnar import (
    closure_adjacency,
    overdeleted_rows,
    patch_closure_insert,
    reach_from,
)
from repro.core.engine import Session
from repro.logic.eval import ModelChecker, define_relation
from repro.logic.formula import LFPAtom, and_, aux, exists, or_, rel, var
from repro.logic.optimize import (
    MaintenancePlan,
    base_delta_name,
    differentiate_relation,
    maintenance_strategy,
    optimize_formula,
)
from repro.logic.plan import DeltaScan, RelationScan
from repro.logic.queries import CANONICAL_QUERIES
from repro.structures import (
    Changeset,
    Structure,
    path_graph,
    random_alternating_graph,
    random_graph,
)

E_CHANGED = frozenset({"E"})


def lfp_tc(u="u", v="v"):
    """Hand-rolled transitive closure as an LFP (maintainable: monotone
    body with a delta rewrite, unlike the canonical ``apath``)."""
    body = or_(rel("E", "x", "y"),
               exists("z", and_(rel("E", "x", "z"), aux("R", "z", "y"))))
    return LFPAtom("R", ("x", "y"), body, (var(u), var(v)))


def two_hop():
    return exists("z", and_(rel("E", "u", "z"), rel("E", "z", "v")))


def plan_for(formula, structure=None):
    return optimize_formula(formula,
                            structure or random_alternating_graph(5, seed=0))


# ------------------------------------------------- maintainability analysis


@pytest.mark.parametrize("name, strategy", [
    ("tc", "closure"),          # Dyn-FO edge patching on the k=1 closure
    ("dtc", "recompute"),       # deterministic closure is non-monotone
    ("apath", "recompute"),     # forall in the body: no delta rewrite
    ("half-out", "recompute"),  # counting construct
    ("non-reach", "recompute"),  # complement of a closure
])
def test_canonical_query_verdicts(name, strategy):
    plan = plan_for(CANONICAL_QUERIES[name].formula())
    assert maintenance_strategy(plan, E_CHANGED).strategy == strategy


def test_monotone_lfp_gets_the_fixpoint_strategy():
    verdict = maintenance_strategy(plan_for(lfp_tc()), E_CHANGED)
    assert verdict.strategy == "fixpoint"
    assert verdict.core is not None and verdict.permutation is not None


def test_nonrecursive_monotone_plan_gets_the_delta_strategy():
    assert maintenance_strategy(plan_for(two_hop()),
                                E_CHANGED).strategy == "delta"


def test_untouched_relations_mean_unchanged():
    plan = plan_for(CANONICAL_QUERIES["tc"].formula())
    verdict = maintenance_strategy(plan, frozenset({"A"}))
    assert verdict == MaintenancePlan("unchanged")


def test_closure_core_permutation_recovers_memo_rows():
    verdict = maintenance_strategy(plan_for(CANONICAL_QUERIES["tc"].formula()),
                                   E_CHANGED)
    assert verdict.strategy == "closure"
    assert sorted(verdict.permutation) == list(range(2))


def test_base_delta_name_cannot_collide_with_auxiliaries():
    assert "\x00" in base_delta_name("E")
    assert base_delta_name("E") != base_delta_name("A")


def test_differentiate_swaps_scans_for_deltas():
    scan = RelationScan("E", ("x", "y"))
    derivative = differentiate_relation(scan, "E")
    assert isinstance(derivative, DeltaScan)
    assert derivative.name == base_delta_name("E")
    assert derivative.columns == scan.columns
    assert differentiate_relation(scan, "A") is None


def test_negated_dependence_has_no_derivative():
    # E under a complement: the differentiator returns the plan itself,
    # the sentinel the strategy analysis reads as "recompute".
    plan = plan_for(CANONICAL_QUERIES["non-reach"].formula())
    assert differentiate_relation(plan, "E") is plan


# ------------------------------------------------- closure patch kernels


def random_adjacency(rng, n):
    edges = {(rng.randrange(n), rng.randrange(n))
             for _ in range(rng.randrange(2 * n))}
    adjacency = [0] * n
    for u, v in edges:
        adjacency[u] |= 1 << v
    return adjacency, edges


@pytest.mark.parametrize("seed", range(8))
def test_patch_insert_matches_batch_closure(seed):
    rng = random.Random(seed)
    n = rng.randrange(2, 9)
    adjacency, edges = random_adjacency(rng, n)
    reach = closure_adjacency(list(adjacency), n)
    u, v = rng.randrange(n), rng.randrange(n)
    changed = patch_closure_insert(reach, u, v)
    adjacency[u] |= 1 << v
    assert reach == closure_adjacency(adjacency, n)
    # every flagged source really reaches v now
    for x in range(n):
        if changed & (1 << x):
            assert reach[x] & (1 << v)


@pytest.mark.parametrize("seed", range(8))
def test_overdelete_then_rederive_matches_batch_closure(seed):
    rng = random.Random(100 + seed)
    n = rng.randrange(2, 9)
    adjacency, edges = random_adjacency(rng, n)
    if not edges:
        pytest.skip("empty graph: nothing to delete")
    reach = closure_adjacency(list(adjacency), n)
    removed = rng.choice(sorted(edges))
    adjacency[removed[0]] &= ~(1 << removed[1])
    truth = closure_adjacency(adjacency, n)
    over = overdeleted_rows(reach, [removed])
    for x in range(n):
        # over-deletion is conservative: everything truly dead is flagged
        dead = (reach[x] | (1 << x)) & ~truth[x]
        assert dead & ~over[x] == 0
        # ... and re-derivation from the new edges restores the truth
        rederived = reach_from(adjacency, x)
        assert ((reach[x] & ~over[x]) | (rederived & over[x])) == truth[x]


def test_reach_from_is_reflexive():
    assert reach_from([0, 0, 0], 1) == 0b010


# ------------------------------------------------- checker maintenance


def tc_formula():
    return CANONICAL_QUERIES["tc"].formula()


def oracle(formula, structure):
    return define_relation(formula, structure, ("u", "v"), backend="tuple")


def copy_structure(structure):
    return Structure(structure.vocabulary, structure.size,
                     dict(structure.relations), intern=structure.intern)


def test_apply_update_patches_the_tc_memo():
    structure = path_graph(6)
    checker = ModelChecker(structure, backend="plan")
    checker.defined_relation(tc_formula())
    checker.apply_update(Changeset.inserting("E", (5, 0)))
    checker.apply_update(Changeset.deleting("E", (2, 3)))
    columns, rows = checker.defined_relation(tc_formula())
    assert {tuple(row[columns.index(c)] for c in ("u", "v"))
            for row in rows} == oracle(tc_formula(), structure)
    assert checker.ivm_stats.get("closure", 0) == 2
    assert not [e for e in checker.degradations if e.stage == "ivm"]


def test_apply_update_maintains_the_lfp_fixpoint():
    structure = random_alternating_graph(6, seed=11)
    checker = ModelChecker(structure, backend="plan")
    checker.defined_relation(lfp_tc())
    checker.apply_update(Changeset(
        tuple(Changeset.inserting("E", (0, 5)))
        + tuple(Changeset.deleting("E", next(iter(
            sorted(structure.relations["E"])))))))
    columns, rows = checker.defined_relation(lfp_tc())
    assert {tuple(row[columns.index(c)] for c in ("u", "v"))
            for row in rows} == oracle(lfp_tc(), structure)
    assert checker.ivm_stats.get("fixpoint", 0) == 1


def test_unmaintainable_memo_is_dropped_with_a_degradation():
    structure = random_alternating_graph(5, seed=3)
    checker = ModelChecker(structure, backend="plan")
    apath = CANONICAL_QUERIES["apath"].formula()
    checker.defined_relation(apath)
    checker.apply_update(Changeset.inserting("E", (0, 4)))
    assert checker.ivm_stats.get("recompute", 0) == 1
    assert [e for e in checker.degradations if e.stage == "ivm"
            and e.fallback == "recompute"]
    # ... and the next read recomputes correctly, never serving stale rows.
    columns, rows = checker.defined_relation(apath)
    assert {tuple(row[columns.index(c)] for c in ("u", "v"))
            for row in rows} == oracle(apath, structure)


def test_wide_universe_closure_degrades_to_recompute(monkeypatch):
    """Past the dense width threshold the closure patch would allocate an
    O(n^2)-bit reach matrix; the maintainer must fall back to recompute
    (P9) instead — and the recomputed rows must still be exact."""
    import repro.logic.ivm as ivm

    monkeypatch.setattr(ivm, "DENSE_WIDTH_THRESHOLD", 3)
    structure = path_graph(6)
    checker = ModelChecker(structure, backend="plan")
    checker.defined_relation(tc_formula())
    checker.apply_update(Changeset.inserting("E", (5, 0)))
    assert checker.ivm_stats.get("closure", 0) == 0
    assert [e for e in checker.degradations if e.stage == "ivm"
            and e.fallback == "recompute"
            and "dense maintenance threshold" in e.error]
    columns, rows = checker.defined_relation(tc_formula())
    assert {tuple(row[columns.index(c)] for c in ("u", "v"))
            for row in rows} == oracle(tc_formula(), structure)


def test_universe_growth_drops_every_memo():
    structure = Structure.from_labeled({"E": [("a", "b")]}, ["a", "b"],
                                       vocabulary=path_graph(2).vocabulary)
    checker = ModelChecker(structure, backend="plan")
    checker.defined_relation(tc_formula())
    checker.apply_update(Changeset.inserting("E", ("b", "c")))
    assert checker.ivm_stats.get("recompute", 0) == 1
    assert any("universe grew" in e.error for e in checker.degradations
               if e.stage == "ivm")
    columns, rows = checker.defined_relation(tc_formula())
    assert {tuple(row[columns.index(c)] for c in ("u", "v"))
            for row in rows} == oracle(tc_formula(), structure)


def test_empty_net_changeset_is_a_no_op():
    structure = path_graph(4)
    checker = ModelChecker(structure, backend="plan")
    checker.defined_relation(tc_formula())
    net = checker.apply_update(Changeset(
        tuple(Changeset.inserting("E", (3, 0)))
        + tuple(Changeset.deleting("E", (3, 0)))))
    assert not net
    assert not checker.ivm_stats


def test_tuple_backend_memos_drop_on_update():
    structure = path_graph(5)
    checker = ModelChecker(structure, backend="tuple")
    assert checker.evaluate(tc_formula(), {"u": 0, "v": 4})
    checker.apply_update(Changeset.deleting("E", (2, 3)))
    assert not checker.evaluate(tc_formula(), {"u": 0, "v": 4})


def test_session_update_maintains_the_live_checker():
    structure = path_graph(6)
    session = Session()
    formula = tc_formula()
    assert session.evaluate_formula(formula, structure,
                                    {"u": 0, "v": 5})
    net = session.update(structure, Changeset.deleting("E", (2, 3)))
    assert len(net) == 1
    assert not session.evaluate_formula(formula, structure,
                                        {"u": 0, "v": 5})
    assert session.evaluate_formula(formula, structure, {"u": 0, "v": 2})


def test_session_update_without_a_checker_just_applies():
    structure = path_graph(3)
    session = Session()
    session.update(structure, Changeset.inserting("E", (2, 0)))
    assert (2, 0) in structure.relations["E"]


def test_defined_relation_tuple_backend_sorts_the_layout():
    structure = path_graph(4)
    checker = ModelChecker(structure, backend="tuple")
    columns, rows = checker.defined_relation(two_hop())
    assert columns == ("u", "v")
    assert rows == oracle(two_hop(), structure)


def test_batched_update_equals_sequential_on_the_memo():
    structure = random_graph(7, 0.3, seed=5)
    batched = copy_structure(structure)
    checker_b = ModelChecker(batched, backend="plan")
    checker_s = ModelChecker(structure, backend="plan")
    for checker in (checker_b, checker_s):
        checker.defined_relation(tc_formula())
    ops = [("insert", (0, 6)), ("delete", (0, 1)), ("insert", (6, 0))]
    checker_b.apply_update(Changeset(tuple(
        c for op, row in ops
        for c in (Changeset.inserting("E", row) if op == "insert"
                  else Changeset.deleting("E", row)))))
    for op, row in ops:
        checker_s.apply_update(Changeset.inserting("E", row)
                               if op == "insert"
                               else Changeset.deleting("E", row))
    assert batched == structure
    assert checker_b.defined_relation(tc_formula()) == \
        checker_s.defined_relation(tc_formula())
