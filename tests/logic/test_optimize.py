"""Unit tests for the plan optimizer (:mod:`repro.logic.optimize`): one
test class per rewrite pass — simplification, selection pushdown /
constrained-domain fusing, dead-column pruning, cost-based join reordering
with semi/antijoin conversion, join/projection fusion, semi-naive delta
rewriting (including every fallback condition), and common-subplan sharing
— plus the execution counters, the ``Cumulative`` accumulator, the
``--stats``/``--no-optimize``/``--explain`` CLI surface, and the Session
facade's optimizer dispatch."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as cli_main
from repro.core.engine import Session
from repro.logic.compile import compile_formula
from repro.logic.eval import ModelChecker, define_relation
from repro.logic.formula import (
    LFPAtom,
    MAX,
    ZERO,
    and_,
    aux,
    count_at_least,
    eq,
    exists,
    forall,
    implies,
    leq,
    neg,
    or_,
    rel,
    var,
)
from repro.logic.optimize import (
    CostModel,
    differentiate,
    estimate,
    explain_optimized,
    optimize_formula,
    optimize_plan,
)
from repro.logic.plan import (
    AntiJoin,
    ConstrainedDomain,
    Cumulative,
    DeltaScan,
    DomainProduct,
    Empty,
    ExecutionContext,
    Fixpoint,
    Join,
    JoinProject,
    Plan,
    PlanStats,
    Project,
    RelationScan,
    Select,
    SemiJoin,
    Shared,
    Union,
)
from repro.logic.queries import CANONICAL_QUERIES, apath_lfp, gap_formula
from repro.structures import (
    graph_structure,
    path_graph,
    random_alternating_graph,
    random_graph,
)


def _walk(plan: Plan):
    yield plan
    for child in plan.children():
        yield from _walk(child)


def _nodes(plan: Plan, kind) -> list[Plan]:
    return [node for node in _walk(plan) if isinstance(node, kind)]


def _optimized(formula, structure, variables=None) -> Plan:
    return optimize_formula(formula, structure, variables)


COST = CostModel(8, {"E": 12, "A": 3})


class TestSimplifyAndPushdown:
    def test_equality_atom_fuses_into_constrained_domain(self):
        plan = _optimized(eq("x", "y"), path_graph(4))
        assert isinstance(plan, ConstrainedDomain)
        rows = plan.execute(ExecutionContext(path_graph(4))).rows
        assert rows == {(v, v) for v in range(4)}

    def test_constrained_domain_never_materializes_the_product(self):
        structure = path_graph(32)
        stats = PlanStats()
        plan = _optimized(eq("x", "y"), structure)
        context = ExecutionContext(structure, stats=stats)
        assert len(plan.execute(context)) == 32
        assert stats.rows_materialized == 32      # not 32*32

    def test_constrained_domain_orders_and_constants(self):
        structure = path_graph(5)
        cases = {
            leq("x", "y"): {(x, y) for x in range(5) for y in range(5) if x <= y},
            neg(leq("x", "y")): {(x, y) for x in range(5) for y in range(5) if x > y},
            eq("x", MAX): {(4,)},
            neg(eq("x", ZERO)): {(1,), (2,), (3,), (4,)},
        }
        for formula, expected in cases.items():
            plan = _optimized(formula, structure)
            assert plan.execute(ExecutionContext(structure)).rows == expected, formula

    def test_selection_pushes_below_the_join(self):
        # x = 0 constrains only E(x, z): it must land on that side, fused
        # into the scan's select, not sit above the join.
        formula = and_(rel("E", "x", "z"), rel("E", "z", "y"), eq("x", ZERO))
        plan = _optimized(formula, random_graph(6, seed=1))
        assert not isinstance(plan, Select)

    def test_identity_projects_are_dropped(self):
        plan = _optimized(CANONICAL_QUERIES["tc"].formula(),
                          random_graph(5, seed=0), ("u", "v"))
        # The raw plan wraps the closure in an identity Project; the
        # optimized one reads the closure (modulo renaming) directly.
        assert not _nodes(plan, Project)

    def test_union_absorbs_empty_and_duplicates(self):
        g = path_graph(3)
        plan = _optimized(or_(rel("E", "x", "y"), rel("E", "x", "y")), g)
        assert not _nodes(plan, Union)
        false_side = _optimized(or_(and_(rel("E", "x", "y"), neg(rel("E", "x", "y"))),
                                    rel("E", "x", "y")), g)
        assert false_side.execute(ExecutionContext(g)).rows == \
            {tuple(e) for e in g.relation("E")}


class TestPruning:
    def test_dead_columns_drop_below_the_join(self):
        # w is quantified away and never read above: the E(x, w) operand
        # must be projected to (x,) before joining, not after.
        formula = exists("w", and_(rel("E", "x", "w"), rel("E", "x", "z")))
        plan = _optimized(formula, random_graph(6, seed=2))
        joins = _nodes(plan, (Join, JoinProject, SemiJoin))
        assert joins
        for join in joins:
            for side in (join.left, join.right):
                assert "w" not in side.columns

    def test_pruned_plans_agree_with_the_oracle(self):
        formula = exists("w", and_(rel("E", "x", "w"), rel("E", "x", "z")))
        g = random_graph(6, seed=2)
        assert define_relation(formula, g, ("x", "z"), backend="plan") == \
            define_relation(formula, g, ("x", "z"), backend="tuple")


class TestJoinReordering:
    def test_chain_starts_from_the_cheapest_relation(self):
        # A is much smaller than E: the greedy order must touch A first.
        formula = and_(rel("E", "x", "y"), rel("A", "x"))
        plan = optimize_plan(compile_formula(formula), COST)
        joins = _nodes(plan, (Join, JoinProject, SemiJoin))
        assert joins
        first = joins[-1]  # innermost join of the rebuilt chain
        leftmost = first.left
        while leftmost.children():
            leftmost = leftmost.children()[0]
        assert isinstance(leftmost, RelationScan) and leftmost.name == "A"

    def test_covered_operand_becomes_a_semijoin(self):
        formula = and_(rel("E", "x", "y"), rel("E", "y", "x"))
        plan = optimize_plan(compile_formula(formula), COST)
        assert _nodes(plan, SemiJoin)

    def test_covered_negation_becomes_an_antijoin(self):
        formula = and_(rel("E", "x", "y"), neg(rel("E", "y", "x")))
        plan = optimize_plan(compile_formula(formula), COST)
        assert _nodes(plan, AntiJoin)
        # ... and no Domain^2 complement survives anywhere in the plan.
        assert all(len(node.columns) < 2
                   for node in _nodes(plan, DomainProduct))

    def test_antijoin_agrees_with_the_oracle(self):
        formula = and_(rel("E", "x", "y"), neg(rel("E", "y", "x")))
        g = random_graph(7, seed=3)
        assert define_relation(formula, g, ("x", "y"), backend="plan") == \
            define_relation(formula, g, ("x", "y"), backend="tuple")

    def test_quantifier_widening_domain_is_absorbed(self):
        # The Or aligns its operands by widening with Domain^1 products;
        # joining against E already covers those columns, so no full
        # domain product should survive the reorder.
        formula = and_(rel("E", "x", "y"),
                       or_(rel("A", "x"), rel("A", "y")))
        plan = optimize_plan(compile_formula(formula), COST)
        # Single-column widening pads the Or's operands into alignment;
        # what must not survive is a full two-column product feeding the
        # conjunction.
        assert all(len(node.columns) < 2
                   for node in _nodes(plan, DomainProduct))


class TestFusion:
    def test_exists_composition_fuses_join_and_project(self):
        formula = exists("z", and_(rel("E", "x", "z"), rel("E", "z", "y")))
        plan = _optimized(formula, random_graph(6, seed=4))
        fused = _nodes(plan, JoinProject)
        assert fused and all("z" not in node.columns for node in fused)

    def test_fused_join_collapses_duplicates_during_emission(self):
        g = graph_structure(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        formula = exists("z", and_(rel("E", "x", "z"), rel("E", "z", "y")))
        stats = PlanStats()
        rows = define_relation(formula, g, ("x", "y"), backend="plan",
                               stats=stats)
        assert rows == {(0, 3)}
        assert stats.rows_materialized < 10


class TestDeltaRewriting:
    def test_linear_body_differentiates_to_a_delta_scan(self):
        plan = compile_formula(gap_formula())
        fixpoint = _nodes(plan, Fixpoint)[0]
        delta = differentiate(fixpoint.body, "R")
        assert delta is not None
        assert _nodes(delta, DeltaScan)
        # The eq(x, y) base case does not mention R: it is absent from the
        # derivative entirely (run-once work).
        assert not _nodes(delta, ConstrainedDomain)

    def test_optimizer_attaches_the_delta_body(self):
        plan = _optimized(gap_formula(), random_graph(6, seed=5))
        fixpoint = _nodes(plan, Fixpoint)[0]
        assert fixpoint.delta_body is not None
        assert _nodes(fixpoint.delta_body, DeltaScan)

    def test_constant_body_gets_an_empty_delta(self):
        formula = LFPAtom("R", ("x",), rel("A", "x"), (ZERO,))
        plan = _optimized(formula, random_graph(4, seed=6))
        fixpoint = _nodes(plan, Fixpoint)[0]
        assert isinstance(fixpoint.delta_body, Empty)

    def test_aux_under_difference_right_falls_back(self):
        # forall z (E(x,z) -> R(z,y)): R lands under the right side of the
        # active-domain complement, which cannot be differentiated — the
        # whole dependent part re-derives in full.
        body = or_(eq("x", "y"),
                   forall("z", implies(rel("E", "x", "z"), aux("R", "z", "y"))))
        delta = differentiate(compile_formula(body), "R")
        assert delta is not None
        assert not _nodes(delta, DeltaScan)

    def test_aux_under_count_select_falls_back(self):
        body = count_at_least(2, "z", aux("R", "z", "x"))
        plan = compile_formula(body)
        assert differentiate(plan, "R") is plan

    def test_aux_under_nested_fixpoint_falls_back(self):
        inner = LFPAtom("S", ("w",), or_(rel("A", "w"), aux("R", "w", "w")),
                        (var("x"),))
        plan = compile_formula(inner)
        assert differentiate(plan, "R") is plan

    def test_shadowed_aux_is_no_dependence(self):
        # The inner fixpoint rebinds R: its R-atoms are not occurrences of
        # the outer R.
        inner = LFPAtom("R", ("w",), or_(rel("A", "w"), aux("R", "w")),
                        (var("x"),))
        assert differentiate(compile_formula(inner), "R") is None

    def test_monotone_side_is_accumulated(self):
        plan = _optimized(apath_lfp(var("u"), var("v")),
                          random_alternating_graph(8, seed=7))
        fixpoint = _nodes(plan, Fixpoint)[0]
        assert _nodes(fixpoint.delta_body, Cumulative)

    def test_delta_rounds_do_frontier_bounded_work(self):
        # The TC chain: gap as a linear LFP over a path graph.  Each round
        # must materialize O(frontier) rows, not the accumulated relation.
        n = 24
        g = path_graph(n)
        formula = gap_formula()
        stats = PlanStats()
        checker = ModelChecker(g, backend="plan")
        checker.plan_stats = stats
        assert checker.evaluate(formula)
        rounds = stats.fixpoint_round_rows
        assert len(rounds) >= n - 1
        accumulated = n * (n + 1) // 2
        assert max(rounds) <= 4 * n            # frontier-bounded ...
        assert max(rounds) < accumulated       # ... not relation-bounded

    def test_naive_mode_ignores_the_delta_body(self):
        g = random_alternating_graph(5, seed=8)
        formula = apath_lfp(var("u"), var("v"))
        results = {
            define_relation(formula, g, ("u", "v"), backend="plan",
                            optimize=optimize, seminaive=seminaive)
            for optimize in (True, False)
            for seminaive in (True, False)
        }
        assert len(results) == 1


class TestSharing:
    def test_repeated_subplans_share_one_execution(self):
        formula = or_(exists("z", and_(rel("E", "x", "z"), rel("E", "z", "y"))),
                      and_(exists("z", and_(rel("E", "x", "z"), rel("E", "z", "y"))),
                           rel("A", "x")))
        g = random_alternating_graph(6, seed=9)
        plan = _optimized(formula, g)
        assert _nodes(plan, Shared)
        stats = PlanStats()
        context = ExecutionContext(g, stats=stats, memo={})
        fast = plan.execute(context).rows
        assert stats.shared_hits >= 1
        assert fast == define_relation(formula, g, ("x", "y"), backend="tuple")

    def test_fixpoint_bodies_share_round_invariant_work(self):
        g = random_alternating_graph(8, seed=10)
        stats = PlanStats()
        define_relation(apath_lfp(var("u"), var("v")), g, ("u", "v"),
                        backend="plan", stats=stats)
        # E-scans, domain products and the ~A(x) branch are re-read from
        # the memo on every round after the first.
        assert stats.shared_hits > stats.fixpoint_rounds

    def test_sharing_is_transparent_without_a_memo(self):
        plan = Shared(RelationScan("E", ("$0", "$1")))
        g = path_graph(3)
        assert plan.execute(ExecutionContext(g)).rows == \
            {tuple(e) for e in g.relation("E")}


class TestCounters:
    def test_stats_accumulate_rows_probes_and_rounds(self):
        g = random_graph(6, seed=11)
        stats = PlanStats()
        define_relation(gap_formula(), g, (), backend="plan", stats=stats)
        payload = stats.as_dict()
        assert payload["rows_materialized"] > 0
        assert payload["index_probes"] > 0
        assert payload["fixpoint_rounds"] >= 2
        assert payload["max_fixpoint_round_rows"] > 0

    def test_optimized_materializes_no_more_than_raw(self):
        g = random_alternating_graph(7, seed=12)
        for name in ("tc", "dtc", "apath", "agap", "gap", "half-out"):
            query = CANONICAL_QUERIES[name]
            formula = query.formula()
            on, off = PlanStats(), PlanStats()
            fast = define_relation(formula, g, query.variables,
                                   backend="plan", optimize=True, stats=on)
            slow = define_relation(formula, g, query.variables,
                                   backend="plan", optimize=False, stats=off)
            assert fast == slow, name
            assert on.rows_materialized <= off.rows_materialized, name


class TestCostModel:
    def test_estimates_use_live_relation_sizes(self):
        scan = RelationScan("E", ("$0", "$1"))
        assert estimate(scan, COST) == 12.0
        assert estimate(DomainProduct(("x", "y")), COST) == 64.0
        join = Join(RelationScan("E", ("x", "z")), RelationScan("E", ("z", "y")))
        assert estimate(join, COST) == pytest.approx(12 * 12 / 8)

    def test_estimates_cap_at_the_domain_product(self):
        big = Join(DomainProduct(("x", "y")), DomainProduct(("y", "z")))
        assert estimate(big, COST) <= 8 ** 3

    def test_cost_model_key_is_structure_statistics(self):
        g = random_graph(5, seed=13)
        assert CostModel.from_structure(g).key() == \
            (5, tuple(sorted({name: len(rows)
                              for name, rows in g.relations.items()}.items())))

    def test_optimization_is_memoized_per_statistics(self):
        g = random_graph(5, seed=14)
        formula = CANONICAL_QUERIES["tc"].formula()
        assert optimize_formula(formula, g) is optimize_formula(formula, g)


class TestSessionAndCLI:
    def test_session_backends_dispatch_the_optimizer(self):
        assert Session().logic_optimize
        assert Session(backend="interp").logic_optimize
        assert not Session(backend="reference").logic_optimize

    def test_session_define_relation_agrees_with_oracle(self):
        g = random_alternating_graph(6, seed=15)
        formula = apath_lfp(var("u"), var("v"))
        assert Session().define_relation(formula, g, ("u", "v")) == \
            Session(backend="reference").define_relation(formula, g, ("u", "v"))

    def _write_structure(self, tmp_path):
        path = tmp_path / "graph.json"
        path.write_text(json.dumps({"D": [0, 1, 2, 3],
                                    "E": [[0, 1], [1, 2], [2, 3]]}))
        return path

    def test_cli_stats_flag(self, tmp_path, capsys):
        path = self._write_structure(tmp_path)
        assert cli_main(["logic", "gap", "--structure", str(path),
                         "--stats"]) == 0
        output = capsys.readouterr().out
        assert "rows_materialized=" in output
        assert "fixpoint_rounds=" in output

    def test_cli_no_optimize_flag(self, tmp_path, capsys):
        path = self._write_structure(tmp_path)
        assert cli_main(["logic", "tc", "--structure", str(path),
                         "--no-optimize"]) == 0
        output = capsys.readouterr().out
        assert "plan, unoptimized" in output
        assert "rows:        10" in output

    def test_cli_explain_shows_both_plans_with_estimates(self, tmp_path, capsys):
        path = self._write_structure(tmp_path)
        assert cli_main(["logic", "gap", "--structure", str(path),
                         "--explain"]) == 0
        output = capsys.readouterr().out
        assert "logical plan:" in output
        assert "optimized plan:" in output
        assert "rows" in output                  # the ~N rows annotations
        assert "[delta]" in output               # the rewritten fixpoint

    def test_cli_explain_raw_with_no_optimize(self, tmp_path, capsys):
        path = self._write_structure(tmp_path)
        assert cli_main(["logic", "tc", "--structure", str(path),
                         "--explain", "--no-optimize"]) == 0
        output = capsys.readouterr().out
        assert "plan:" in output
        assert "optimized plan:" not in output


class TestExplainOptimized:
    def test_explain_optimized_renders_all_sections(self):
        g = random_graph(4, seed=16)
        text = explain_optimized(CANONICAL_QUERIES["tc"].formula(), g,
                                 ("u", "v"))
        assert "formula:" in text
        assert "logical plan:" in text
        assert "optimized plan:" in text
        assert "Closure[TC, k=1]" in text


class TestDegreeStatistics:
    """Snapshot-persisted degree stats feed the cost model (P9)."""

    def test_from_structure_reads_snapshot_degree_stats(self, tmp_path):
        from repro.structures import load_structure, save_snapshot

        g = random_graph(8, edge_probability=0.4, seed=9)
        save_snapshot(g, tmp_path / "g.snap")
        loaded = load_structure(tmp_path / "g.snap")
        cost = CostModel.from_structure(loaded)
        stats = loaded.degree_stats["E"]
        assert cost.fanout("E", from_source=True) == \
            stats["rows"] / stats["distinct_sources"]
        assert cost.fanout("E", from_source=False) == \
            stats["rows"] / stats["distinct_targets"]
        # Plain structures record no degrees: fanout stays unknown.
        assert CostModel.from_structure(g).fanout("E", True) is None

    def test_degrees_change_the_memo_key(self):
        plain = CostModel(8, {"E": 12})
        informed = CostModel(8, {"E": 12}, degrees={
            "E": {"rows": 12, "distinct_sources": 2,
                  "distinct_targets": 12, "max_out_degree": 6}})
        assert plain.key() != informed.key()

    def test_fanout_tightens_the_join_estimate(self):
        from repro.logic.plan import Join, RelationScan

        join = Join(RelationScan("E", ("x", "y")),
                    RelationScan("E", ("y", "z")))
        # Uniform: |E|^2 / n = 50 * 50 / 10 = 250.  With every target
        # distinct the per-target fanout is 1, so probing the build side
        # row by row bounds the join at |E| * 1 = 50.
        skewed = CostModel(10, {"E": 50}, degrees={
            "E": {"rows": 50, "distinct_sources": 25,
                  "distinct_targets": 50, "max_out_degree": 2}})
        uniform = CostModel(10, {"E": 50})
        assert estimate(join, skewed) < estimate(join, uniform)
